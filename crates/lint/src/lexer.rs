//! A hand-rolled Rust lexer: source text → a flat token stream with byte
//! spans and line numbers.
//!
//! The lexer is deliberately *not* a full Rust front end. It recognizes
//! exactly the token classes the rule matcher needs to be sound about:
//! comments (so rule text inside them never fires and `// lint:allow` /
//! `// SAFETY:` markers can be read), string/char literals (so
//! `"thread_rng"` in a message never fires), numbers, identifiers,
//! lifetimes, and single-character punctuation. Multi-character operators
//! (`::`, `->`, `..`) arrive as runs of single `Punct` tokens; the matcher
//! works at that granularity.
//!
//! Invariant (property-tested in `tests/lexer_roundtrip.rs`): token spans
//! are strictly ascending and non-overlapping, every inter-token gap is
//! whitespace-only, and re-concatenating gaps + token slices reproduces
//! the input byte-for-byte.

/// The coarse classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, `r#async`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`0`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2.5e-3`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// `// …` comment (doc comments included), newline excluded.
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// A single punctuation byte (`.`, `:`, `!`, `{`, ...).
    Punct,
}

/// One lexed token: kind + half-open byte span + 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
}

impl Token {
    /// The source slice this token covers.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexing failure: the offending byte offset and a description.
///
/// The linter treats unlexable files as findings in their own right
/// (rule `lex-error`) rather than silently skipping them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset where lexing stopped.
    pub at: usize,
    /// 1-based line of `at`.
    pub line: u32,
    /// What went wrong (unterminated string, stray byte, ...).
    pub message: String,
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic() || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
}

/// Lex `src` into tokens. Whitespace is skipped (but accounted for by the
/// round-trip invariant); everything else becomes a token.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Vec::with_capacity(n / 4);
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! err {
        ($at:expr, $msg:expr) => {
            return Err(LexError {
                at: $at,
                line,
                message: $msg.to_string(),
            })
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        // Comments.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::LineComment,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            if depth > 0 {
                err!(start, "unterminated block comment");
            }
            out.push(Token {
                kind: TokenKind::BlockComment,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }
        // Raw strings / raw identifiers / byte strings: r"…", r#"…"#,
        // br#"…"#, b"…", b'…', r#ident.
        if c == b'r' || c == b'b' {
            let (skip, allow_raw, allow_byte_char) = match (c, b.get(i + 1).copied()) {
                (b'r', _) => (1usize, true, false),
                (b'b', Some(b'r')) => (2, true, false),
                (b'b', Some(b'"')) => (1, false, false),
                (b'b', Some(b'\'')) => (1, false, true),
                _ => (0, false, false),
            };
            if skip > 0 {
                let j = i + skip;
                if allow_raw && matches!(b.get(j).copied(), Some(b'#') | Some(b'"')) {
                    // Raw (byte) string: count hashes, then scan to `"` + hashes.
                    let mut hashes = 0usize;
                    let mut k = j;
                    while k < n && b[k] == b'#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && b[k] == b'"' {
                        k += 1;
                        'raw: loop {
                            if k >= n {
                                err!(start, "unterminated raw string");
                            }
                            if b[k] == b'\n' {
                                line += 1;
                                k += 1;
                                continue;
                            }
                            if b[k] == b'"' {
                                let mut h = 0usize;
                                while h < hashes && k + 1 + h < n && b[k + 1 + h] == b'#' {
                                    h += 1;
                                }
                                if h == hashes {
                                    k += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            k += 1;
                        }
                        out.push(Token {
                            kind: TokenKind::Str,
                            start,
                            end: k,
                            line: start_line,
                        });
                        i = k;
                        continue;
                    }
                    if c == b'r' && hashes >= 1 && k < n && is_ident_start(b[k]) {
                        // Raw identifier r#ident.
                        let mut k2 = k;
                        while k2 < n && is_ident_continue(b[k2]) {
                            k2 += 1;
                        }
                        out.push(Token {
                            kind: TokenKind::Ident,
                            start,
                            end: k2,
                            line: start_line,
                        });
                        i = k2;
                        continue;
                    }
                    // `r#` followed by something else: fall through to ident.
                } else if !allow_raw && !allow_byte_char {
                    // b"…": ordinary string body with escapes.
                    let mut k = j + 1;
                    loop {
                        if k >= n {
                            err!(start, "unterminated byte string");
                        }
                        match b[k] {
                            b'\\' => k += 2,
                            b'"' => {
                                k += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                k += 1;
                            }
                            _ => k += 1,
                        }
                    }
                    out.push(Token {
                        kind: TokenKind::Str,
                        start,
                        end: k,
                        line: start_line,
                    });
                    i = k;
                    continue;
                } else if allow_byte_char {
                    // b'…'
                    let mut k = j + 1;
                    if k < n && b[k] == b'\\' {
                        k += 2;
                    } else {
                        k += 1;
                    }
                    if k >= n || b[k] != b'\'' {
                        err!(start, "unterminated byte char");
                    }
                    out.push(Token {
                        kind: TokenKind::Char,
                        start,
                        end: k + 1,
                        line: start_line,
                    });
                    i = k + 1;
                    continue;
                }
            }
            // Not a raw/byte literal: plain identifier starting with r/b.
        }
        // String literal.
        if c == b'"' {
            let mut k = i + 1;
            loop {
                if k >= n {
                    err!(start, "unterminated string");
                }
                match b[k] {
                    b'\\' => k += 2,
                    b'"' => {
                        k += 1;
                        break;
                    }
                    b'\n' => {
                        line += 1;
                        k += 1;
                    }
                    _ => k += 1,
                }
            }
            out.push(Token {
                kind: TokenKind::Str,
                start,
                end: k,
                line: start_line,
            });
            i = k;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let c1 = b.get(i + 1).copied();
            match c1 {
                Some(b'\\') => {
                    // Escaped char literal: '\n', '\'', '\u{…}'.
                    let mut k = i + 2;
                    if k < n && b[k] == b'u' {
                        while k < n && b[k] != b'\'' {
                            k += 1;
                        }
                    } else {
                        k += 1; // the escaped byte
                    }
                    if k >= n || b[k] != b'\'' {
                        err!(start, "unterminated char literal");
                    }
                    out.push(Token {
                        kind: TokenKind::Char,
                        start,
                        end: k + 1,
                        line: start_line,
                    });
                    i = k + 1;
                    continue;
                }
                Some(x) if is_ident_start(x) => {
                    // 'a' is a char; 'abc (no closing quote) is a lifetime.
                    let mut k = i + 1;
                    while k < n && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    if k < n && b[k] == b'\'' && k == i + 2 {
                        out.push(Token {
                            kind: TokenKind::Char,
                            start,
                            end: k + 1,
                            line: start_line,
                        });
                        i = k + 1;
                    } else {
                        out.push(Token {
                            kind: TokenKind::Lifetime,
                            start,
                            end: k,
                            line: start_line,
                        });
                        i = k;
                    }
                    continue;
                }
                Some(_) => {
                    // Non-ident char literal: ' ', '0' handled above via
                    // ident path? digits are not ident-start, handle here.
                    let k = i + 2;
                    if k >= n || b[k] != b'\'' {
                        err!(start, "unterminated char literal");
                    }
                    out.push(Token {
                        kind: TokenKind::Char,
                        start,
                        end: k + 1,
                        line: start_line,
                    });
                    i = k + 1;
                    continue;
                }
                None => err!(start, "stray quote at end of input"),
            }
        }
        // Number literal.
        if c.is_ascii_digit() {
            let mut k = i + 1;
            let mut kind = TokenKind::Int;
            if c == b'0' && k < n && matches!(b[k], b'x' | b'o' | b'b') {
                k += 1;
                while k < n && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                    k += 1;
                }
            } else {
                while k < n && (b[k].is_ascii_digit() || b[k] == b'_') {
                    k += 1;
                }
                // Fractional part: only if followed by a digit (so `1..x`
                // and `1.max()` stay Int + Punct).
                if k + 1 < n && b[k] == b'.' && b[k + 1].is_ascii_digit() {
                    kind = TokenKind::Float;
                    k += 1;
                    while k < n && (b[k].is_ascii_digit() || b[k] == b'_') {
                        k += 1;
                    }
                }
                // Exponent.
                if k < n && matches!(b[k], b'e' | b'E') {
                    let mut e = k + 1;
                    if e < n && matches!(b[e], b'+' | b'-') {
                        e += 1;
                    }
                    if e < n && b[e].is_ascii_digit() {
                        kind = TokenKind::Float;
                        k = e;
                        while k < n && (b[k].is_ascii_digit() || b[k] == b'_') {
                            k += 1;
                        }
                    }
                }
                // Suffix (u64, f32, usize...).
                while k < n && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                    if matches!(b[k], b'f') && kind == TokenKind::Int {
                        kind = TokenKind::Float;
                    }
                    k += 1;
                }
            }
            out.push(Token {
                kind,
                start,
                end: k,
                line: start_line,
            });
            i = k;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut k = i + 1;
            while k < n && is_ident_continue(b[k]) {
                k += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident,
                start,
                end: k,
                line: start_line,
            });
            i = k;
            continue;
        }
        // Anything else: one punctuation byte.
        out.push(Token {
            kind: TokenKind::Punct,
            start,
            end: i + 1,
            line: start_line,
        });
        i += 1;
    }
    Ok(out)
}

/// Check the round-trip invariant for `src`/`tokens`: spans strictly
/// ascending and non-overlapping, inter-token gaps whitespace-only, and
/// gaps + slices reassemble the input exactly. Returns a description of
/// the first violation, if any.
pub fn check_roundtrip(src: &str, tokens: &[Token]) -> Option<String> {
    let mut pos = 0usize;
    let mut rebuilt = String::with_capacity(src.len());
    for (idx, t) in tokens.iter().enumerate() {
        if t.start < pos {
            return Some(format!(
                "token {idx} overlaps previous (start {} < pos {pos})",
                t.start
            ));
        }
        if t.end <= t.start {
            return Some(format!("token {idx} has empty span {}..{}", t.start, t.end));
        }
        let gap = &src[pos..t.start];
        if !gap.chars().all(char::is_whitespace) {
            return Some(format!("non-whitespace gap before token {idx}: {gap:?}"));
        }
        rebuilt.push_str(gap);
        rebuilt.push_str(&src[t.start..t.end]);
        pos = t.end;
    }
    let tail = &src[pos..];
    if !tail.chars().all(char::is_whitespace) {
        return Some(format!("non-whitespace tail after last token: {tail:?}"));
    }
    rebuilt.push_str(tail);
    if rebuilt != src {
        return Some("reassembled text differs from input".to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_items() {
        use TokenKind::*;
        assert_eq!(
            kinds("fn main() { let x = 1.5; }"),
            vec![Ident, Ident, Punct, Punct, Punct, Ident, Ident, Punct, Float, Punct, Punct]
        );
    }

    #[test]
    fn distinguishes_char_and_lifetime() {
        use TokenKind::*;
        assert_eq!(kinds("'a'"), vec![Char]);
        assert_eq!(kinds("&'a str"), vec![Punct, Lifetime, Ident]);
        assert_eq!(kinds("'static"), vec![Lifetime]);
        assert_eq!(kinds("'\\n'"), vec![Char]);
        assert_eq!(kinds("' '"), vec![Char]);
        assert_eq!(kinds("'0'"), vec![Char]);
    }

    #[test]
    fn range_and_method_on_int_stay_int() {
        use TokenKind::*;
        assert_eq!(kinds("1..10"), vec![Int, Punct, Punct, Int]);
        assert_eq!(
            kinds("1.max(2)"),
            vec![Int, Punct, Ident, Punct, Int, Punct]
        );
        assert_eq!(kinds("x.0"), vec![Ident, Punct, Int]);
        assert_eq!(kinds("1.0e-3"), vec![Float]);
        assert_eq!(kinds("0xff_u64"), vec![Int]);
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        use TokenKind::*;
        assert_eq!(kinds("\"a.unwrap()\""), vec![Str]);
        assert_eq!(kinds("r#\"raw \" body\"#"), vec![Str]);
        assert_eq!(kinds("b\"bytes\""), vec![Str]);
        assert_eq!(
            kinds("// line panic!\n/* block /* nested */ */"),
            vec![LineComment, BlockComment]
        );
    }

    #[test]
    fn raw_identifier() {
        let toks = lex("r#async").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Ident);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn roundtrip_on_self() {
        let src = include_str!("lexer.rs");
        let toks = lex(src).unwrap();
        assert_eq!(check_roundtrip(src, &toks), None);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("\"oops").is_err());
        assert!(lex("/* oops").is_err());
    }
}
