//! Report assembly and hand-rolled JSON serialization/parsing for the
//! machine-readable output (`wakurln-lint --json`).
//!
//! Schema `wakurln-lint/v1`:
//!
//! ```json
//! {
//!   "schema": "wakurln-lint/v1",
//!   "files_scanned": 93,
//!   "allowed_count": 91,
//!   "findings": [ {"rule": "…", "file": "…", "line": 10, "message": "…"} ],
//!   "allowed":  [ {"rule": "…", "file": "…", "line": 12, "reason": "…"} ],
//!   "rule_counts": { "map-iteration": 0, … }
//! }
//! ```
//!
//! `findings` are the *unannotated* violations — the array a clean tree
//! commits as `[]` and the regression guard pins to `[]`. `allowed` is
//! the suppression inventory (every entry carries its marker reason).

use crate::rules::{Finding, RULES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The whole-workspace lint result.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of `.rs` files lexed and checked.
    pub files_scanned: usize,
    /// Unannotated findings (violations).
    pub findings: Vec<Finding>,
    /// Suppressed findings (marker reason in `allowed`).
    pub allowed: Vec<Finding>,
}

impl Report {
    /// Fold per-file findings into the report.
    pub fn absorb(&mut self, file_findings: Vec<Finding>) {
        self.files_scanned += 1;
        for f in file_findings {
            if f.allowed.is_some() {
                self.allowed.push(f);
            } else {
                self.findings.push(f);
            }
        }
    }

    /// Count of unannotated findings per rule, for the summary line.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = RULES.iter().map(|r| (*r, 0)).collect();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Serialize as schema-stable JSON (sorted, 2-space indent).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"wakurln-lint/v1\",\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"allowed_count\": {},", self.allowed.len());
        s.push_str("  \"findings\": [");
        write_entries(&mut s, &self.findings, false);
        s.push_str("],\n  \"allowed\": [");
        write_entries(&mut s, &self.allowed, true);
        s.push_str("],\n  \"rule_counts\": {");
        let counts = self.rule_counts();
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{rule}\": {n}");
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

fn write_entries(s: &mut String, entries: &[Finding], allowed: bool) {
    for (i, f) in entries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, ",
            json_str(f.rule),
            json_str(&f.file),
            f.line
        );
        if allowed {
            let reason = f.allowed.as_deref().unwrap_or("");
            let _ = write!(s, "\"reason\": {}}}", json_str(reason));
        } else {
            let _ = write!(s, "\"message\": {}}}", json_str(&f.message));
        }
    }
    if !entries.is_empty() {
        s.push_str("\n  ");
    }
}

/// Escape a string for JSON.
fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal validation of a committed report: checks the schema tag and
/// returns the number of entries in the `findings` array. Enough for the
/// regression guard without a full JSON parser.
pub fn committed_findings_count(json: &str) -> Result<usize, String> {
    if !json.contains("\"schema\": \"wakurln-lint/v1\"") {
        return Err("missing or wrong schema tag (want wakurln-lint/v1)".to_string());
    }
    let start = json
        .find("\"findings\": [")
        .ok_or_else(|| "missing findings array".to_string())?
        + "\"findings\": [".len();
    // Count objects by brace at depth 0 inside the array, skipping strings.
    let mut depth = 0i64;
    let mut count = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for c in json[start..].chars() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    count += 1;
                }
                depth += 1;
            }
            '}' => depth -= 1,
            ']' if depth == 0 => return Ok(count),
            _ => {}
        }
    }
    Err("unterminated findings array".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_roundtrip() {
        let r = Report::default();
        let json = r.to_json();
        assert_eq!(committed_findings_count(&json), Ok(0));
    }

    #[test]
    fn findings_are_counted() {
        let mut r = Report::default();
        r.absorb(vec![Finding {
            rule: "panic-path",
            file: "x.rs".to_string(),
            line: 3,
            message: "`.unwrap()` with \"quotes\" and {braces}".to_string(),
            allowed: None,
        }]);
        let json = r.to_json();
        assert_eq!(committed_findings_count(&json), Ok(1));
        assert!(json.contains("\\\"quotes\\\""));
    }
}
