#![deny(missing_docs)]
//! `wakurln-lint` — the workspace static-analysis pass that makes the
//! determinism, unsafe-audit, and panic-path contracts *executable*.
//!
//! Every headline property of this reproduction — byte-identical
//! `ScenarioReport`s at any thread count, checkpoint/restore
//! fingerprints, the wheel/heap pop-order pin, the anonymity and
//! resilience measurements — rests on the determinism contract in
//! docs/ARCHITECTURE.md. This crate enforces the mechanizable part of
//! that contract at compile-check time instead of hoping a 3-seed diff
//! job trips: no unordered-collection iteration, no host clocks or
//! ambient entropy, no RNG draws conditioned on unordered state in the
//! deterministic crates; `// SAFETY:` comments on every `unsafe`; total
//! (panic-free) library paths unless a site is explicitly justified.
//!
//! The tool is self-contained by design (hand-rolled lexer + token-tree
//! matcher, no third-party parser) because the build environment is
//! offline. See docs/LINT.md for the rule catalog and marker syntax.
//!
//! Run it:
//!
//! ```text
//! cargo run -p wakurln-lint --              # human diagnostics, exit 0
//! cargo run -p wakurln-lint -- --deny-all   # exit 1 on any unannotated finding
//! cargo run -p wakurln-lint -- --json lint-report.json
//! ```

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use config::{classify, workspace_sources};
use report::Report;
use std::path::Path;

pub use rules::Finding;

/// Lint every checked source file under `root` (the workspace root).
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for rel in workspace_sources(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        report.absorb(rules::lint_source(&rel, classify(&rel), &src));
    }
    Ok(report)
}

/// Locate the workspace root from this crate's manifest dir (works from
/// tests and from `cargo run -p wakurln-lint` alike).
pub fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| {
            // lint:allow(panic-path, reason = "CLI/test entry point: a missing workspace root is unrecoverable and the message is actionable")
            panic!("cannot canonicalize workspace root from CARGO_MANIFEST_DIR")
        })
}
