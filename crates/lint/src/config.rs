//! Which contract applies where.
//!
//! The rules are not uniform across the tree: the determinism contract
//! (docs/ARCHITECTURE.md) binds the simulation crates whose state feeds
//! `ScenarioReport` bytes, while the bench/compat/CLI layers are
//! explicitly host-side and *measure* wall-clock on purpose. This module
//! encodes that map so the rule set can be strict without drowning in
//! allow markers. Changes here are contract changes — mirror them in
//! docs/LINT.md.

use std::path::Path;

/// How a source file participates in the workspace contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Determinism rules apply: `map-iteration`, `host-time`,
    /// `rng-in-branch`. True for the simulation/protocol crates' library
    /// code — everything whose execution order or state can reach a
    /// `ScenarioReport`, checkpoint fingerprint, or trace replay.
    pub deterministic: bool,
    /// Panic-path rule applies: library (non-test, non-bin) code on the
    /// relay/validator paths must stay total.
    pub library: bool,
    /// Whether the file is lint-checked at all (false for fixtures).
    pub checked: bool,
}

impl FileClass {
    /// A class with every rule disabled except `unsafe-audit`
    /// (which applies to all checked files).
    pub const HOST_SIDE: FileClass = FileClass {
        deterministic: false,
        library: false,
        checked: true,
    };
    /// Full-contract class: determinism + panic-path + unsafe-audit.
    pub const DETERMINISTIC_LIBRARY: FileClass = FileClass {
        deterministic: true,
        library: true,
        checked: true,
    };
    /// Not checked at all.
    pub const SKIPPED: FileClass = FileClass {
        deterministic: false,
        library: false,
        checked: false,
    };
}

/// The crates bound by the determinism contract (library sources only).
/// `bench` and `compat` are deliberately absent: bench *is* the host-side
/// measurement layer, and the compat shims mirror third-party APIs
/// (including `Instant` in the criterion shim) verbatim.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "crypto",
    "zksnark",
    "rln",
    "model",
    "core",
    "relay",
    "gossipsub",
    "netsim",
    "ethsim",
    "scenarios",
    "baselines",
];

/// Classify a workspace-relative path (forward slashes).
///
/// The map, in order of precedence:
/// - non-`.rs` files, anything under `target/` or a `fixtures/` dir: skipped;
/// - `crates/compat/**`: skipped (vendored third-party API surface — its
///   panics and `Instant` uses replicate the upstream crates by design);
/// - `crates/bench/**`, any `src/bin/**`, `benches/**`, `examples/**`,
///   top-level `tests/**` and per-crate `tests/**`: host-side
///   (`unsafe-audit` only — test and measurement code may use wall
///   clocks, ambient RNG, and `unwrap` freely);
/// - `crates/lint/src/**`: host-side tooling (it walks the filesystem),
///   but its panic-path hygiene is still checked (`library`);
/// - `crates/<deterministic>/src/**` and the umbrella `src/**`:
///   the full contract.
pub fn classify(rel: &str) -> FileClass {
    if !rel.ends_with(".rs") {
        return FileClass::SKIPPED;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    if parts
        .iter()
        .any(|p| *p == "target" || *p == "fixtures" || p.starts_with('.'))
    {
        return FileClass::SKIPPED;
    }
    if rel.starts_with("crates/compat/") {
        return FileClass::SKIPPED;
    }
    // Test, bench, example, and binary code is host-side regardless of crate.
    if parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples" || *p == "bin")
    {
        return FileClass::HOST_SIDE;
    }
    if rel.starts_with("crates/bench/") {
        return FileClass::HOST_SIDE;
    }
    if rel.starts_with("crates/lint/") {
        return FileClass {
            deterministic: false,
            library: true,
            checked: true,
        };
    }
    if let Some(krate) = parts
        .first()
        .and_then(|p| (*p == "crates").then(|| parts.get(1)).flatten())
    {
        if DETERMINISTIC_CRATES.contains(krate) && parts.get(2) == Some(&"src") {
            return FileClass::DETERMINISTIC_LIBRARY;
        }
        // An unknown crate: be conservative, apply the full contract so a
        // future crate opts *out* explicitly (here) rather than silently.
        if parts.get(2) == Some(&"src") {
            return FileClass::DETERMINISTIC_LIBRARY;
        }
        return FileClass::HOST_SIDE;
    }
    if parts.first() == Some(&"src") {
        // The umbrella crate's re-export shim.
        return FileClass::DETERMINISTIC_LIBRARY;
    }
    FileClass::HOST_SIDE
}

/// Walk `root` collecting workspace-relative paths of checked `.rs`
/// files, sorted for deterministic report ordering.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                if classify(&rel).checked {
                    out.push(rel);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_map() {
        assert_eq!(
            classify("crates/netsim/src/scheduler.rs"),
            FileClass::DETERMINISTIC_LIBRARY
        );
        assert_eq!(
            classify("crates/scenarios/src/report.rs"),
            FileClass::DETERMINISTIC_LIBRARY
        );
        assert_eq!(classify("src/lib.rs"), FileClass::DETERMINISTIC_LIBRARY);
        assert_eq!(
            classify("crates/bench/src/sim_report.rs"),
            FileClass::HOST_SIDE
        );
        assert_eq!(
            classify("crates/bench/src/bin/simctl.rs"),
            FileClass::HOST_SIDE
        );
        assert_eq!(
            classify("crates/core/tests/whatever.rs"),
            FileClass::HOST_SIDE
        );
        assert_eq!(classify("tests/scale.rs"), FileClass::HOST_SIDE);
        assert_eq!(classify("examples/spam_slashing.rs"), FileClass::HOST_SIDE);
        assert_eq!(
            classify("crates/compat/rand/src/lib.rs"),
            FileClass::SKIPPED
        );
        assert_eq!(
            classify("crates/lint/tests/fixtures/bad.rs"),
            FileClass::SKIPPED
        );
        assert!(!classify("crates/lint/src/rules.rs").deterministic);
        assert!(classify("crates/lint/src/rules.rs").library);
        assert_eq!(classify("README.md"), FileClass::SKIPPED);
    }
}
