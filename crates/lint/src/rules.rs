//! The rule matcher: token stream → findings.
//!
//! Rules (see docs/LINT.md for the catalog and the contract mapping):
//!
//! - `map-iteration` — iteration over `HashMap`/`HashSet` in deterministic
//!   code. Receivers are tracked *by name*: any binding, field, or
//!   parameter declared with a `HashMap`/`HashSet` type (or initialized
//!   from `HashMap::new()`-style constructors) in the same file.
//! - `host-time` — `Instant`, `SystemTime`, `thread_rng`, `OsRng`,
//!   `from_entropy`, `getrandom`, `std::thread::current` in deterministic
//!   code. `Duration` is pure data and allowed.
//! - `rng-in-branch` — an RNG draw lexically inside an `if`/`while`/
//!   `match` whose condition/scrutinee mentions a tracked map name: the
//!   draw count (and thus the stream position) would depend on unordered
//!   collection state. Heuristic by design; suppress with a marker when
//!   the guard is order-independent.
//! - `unsafe-audit` — every `unsafe` token must have a `// SAFETY:`
//!   comment on the same line or in the comment block directly above.
//! - `panic-path` — `.unwrap()`, `.expect(…)`, `panic!(…)`, and
//!   indexing-by-integer-literal in library, non-test code.
//!
//! Suppression: `// lint:allow(<rule>, reason = "…")` on the finding's
//! line or the line directly above. The reason is mandatory; a marker
//! that does not parse, names an unknown rule, or has an empty reason is
//! itself a finding (`bad-marker`).

use crate::config::FileClass;
use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;

/// Every rule the matcher can emit, in report order.
pub const RULES: &[&str] = &[
    "map-iteration",
    "host-time",
    "rng-in-branch",
    "unsafe-audit",
    "panic-path",
    "lex-error",
    "bad-marker",
];

/// Rules a `lint:allow` marker may name (the bookkeeping rules
/// `lex-error`/`bad-marker` are not suppressible).
pub const SUPPRESSIBLE: &[&str] = &[
    "map-iteration",
    "host-time",
    "rng-in-branch",
    "unsafe-audit",
    "panic-path",
];

/// One diagnostic. `allowed` carries the marker reason when suppressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when a `lint:allow` marker (or `SAFETY:` comment,
    /// for `unsafe-audit`) suppresses this finding.
    pub allowed: Option<String>,
}

/// An in-source `// lint:allow(rule, reason = "…")` marker.
#[derive(Debug, Clone)]
struct AllowMarker {
    rule: String,
    reason: String,
    /// Last line the marker's comment occupies (markers apply to their
    /// own line and the one below).
    end_line: u32,
}

/// Lint one file's source text under `class`. `rel` is used only for
/// labeling findings.
pub fn lint_source(rel: &str, class: FileClass, src: &str) -> Vec<Finding> {
    let tokens = match lex(src) {
        Ok(t) => t,
        Err(e) => {
            return vec![Finding {
                rule: "lex-error",
                file: rel.to_string(),
                line: e.line,
                message: format!("cannot lex file at byte {}: {}", e.at, e.message),
                allowed: None,
            }]
        }
    };
    let (code, comments): (Vec<Token>, Vec<Token>) = tokens
        .iter()
        .partition(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment));

    let mut findings: Vec<Finding> = Vec::new();
    let (markers, marker_findings) = parse_markers(rel, src, &comments);
    findings.extend(marker_findings);

    let test_regions = test_regions(src, &code);
    let in_test = |pos: usize| test_regions.iter().any(|&(s, e)| pos >= s && pos < e);

    let map_names = collect_map_names(src, &code);

    let mut raw: Vec<(&'static str, u32, usize, String)> = Vec::new(); // (rule, line, pos, msg)

    if class.deterministic {
        rule_map_iteration(src, &code, &map_names, &mut raw);
        rule_host_time(src, &code, &mut raw);
        rule_rng_in_branch(src, &code, &map_names, &mut raw);
    }
    rule_unsafe_audit(src, &code, &comments, &mut raw);
    if class.library {
        rule_panic_path(src, &code, &mut raw);
    }

    // Drop determinism/panic findings inside `#[test]` / `#[cfg(test)]`
    // regions (unsafe-audit stays: SAFETY comments are required even in
    // tests), then dedupe per (rule, line) and apply markers.
    raw.retain(|(rule, _, pos, _)| *rule == "unsafe-audit" || !in_test(*pos));
    raw.sort_by_key(|(rule, line, _, _)| (*line, *rule));
    raw.dedup_by_key(|(rule, line, _, _)| (*line, *rule));

    for (rule, line, _, message) in raw {
        let allowed = markers
            .iter()
            .find(|m| m.rule == rule && (m.end_line == line || m.end_line + 1 == line))
            .map(|m| m.reason.clone());
        findings.push(Finding {
            rule,
            file: rel.to_string(),
            line,
            message,
            allowed,
        });
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------------
// Marker parsing
// ---------------------------------------------------------------------------

fn parse_markers(rel: &str, src: &str, comments: &[Token]) -> (Vec<AllowMarker>, Vec<Finding>) {
    let mut markers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let text = c.text(src);
        // A marker must be the comment's leading content (`// lint:allow(…)`);
        // prose *mentioning* the syntax mid-comment is not a marker.
        let content = text.trim_start_matches(['/', '*', '!']).trim_start();
        if !content.starts_with("lint:allow") {
            continue;
        }
        let end_line = c.line + text.matches('\n').count() as u32;
        let rest = &content["lint:allow".len()..];
        match parse_one_marker(rest) {
            Ok((rule, reason)) => {
                if !SUPPRESSIBLE.contains(&rule.as_str()) {
                    findings.push(Finding {
                        rule: "bad-marker",
                        file: rel.to_string(),
                        line: c.line,
                        message: format!(
                            "lint:allow names unknown or non-suppressible rule `{rule}`"
                        ),
                        allowed: None,
                    });
                } else {
                    markers.push(AllowMarker {
                        rule,
                        reason,
                        end_line,
                    });
                }
            }
            Err(why) => findings.push(Finding {
                rule: "bad-marker",
                file: rel.to_string(),
                line: c.line,
                message: format!("malformed lint:allow marker: {why}"),
                allowed: None,
            }),
        }
    }
    (markers, findings)
}

/// Parse `(<rule>, reason = "…")` with a mandatory non-empty reason.
fn parse_one_marker(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Err("expected `(` after lint:allow".to_string());
    };
    let Some(close) = body.rfind(')') else {
        return Err("missing closing `)`".to_string());
    };
    let body = &body[..close];
    let Some((rule, reason_part)) = body.split_once(',') else {
        return Err(
            "expected `lint:allow(<rule>, reason = \"…\")` — reason is mandatory".to_string(),
        );
    };
    let rule = rule.trim().to_string();
    let reason_part = reason_part.trim();
    let Some(eq) = reason_part.strip_prefix("reason") else {
        return Err("expected `reason = \"…\"` after the rule name".to_string());
    };
    let Some(val) = eq.trim_start().strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let val = val.trim();
    let inner = val
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    if inner.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((rule, inner.to_string()))
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Byte ranges of items annotated with a `test`-bearing attribute
/// (`#[test]`, `#[cfg(test)] mod …`). Attributes containing `not` are
/// ignored so `#[cfg(not(test))]` code stays checked.
fn test_regions(src: &str, code: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(is_punct(src, code, i, "#") && is_punct(src, code, i + 1, "[")) {
            i += 1;
            continue;
        }
        // Find the matching `]` and look for `test` inside.
        let Some(attr_end) = matching_close(src, code, i + 1, "[", "]") else {
            break;
        };
        let mut has_test = false;
        let mut has_not = false;
        for t in &code[i + 2..attr_end] {
            if t.kind == TokenKind::Ident {
                match t.text(src) {
                    "test" => has_test = true,
                    "not" => has_not = true,
                    _ => {}
                }
            }
        }
        if !has_test || has_not {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then the item header up to `{` or `;`.
        let mut j = attr_end + 1;
        while is_punct(src, code, j, "#") && is_punct(src, code, j + 1, "[") {
            match matching_close(src, code, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => return regions,
            }
        }
        let mut k = j;
        while k < code.len() {
            let t = code[k].text(src);
            if t == ";" {
                regions.push((code[i].start, code[k].end));
                break;
            }
            if t == "{" {
                match matching_close(src, code, k, "{", "}") {
                    Some(e) => regions.push((code[i].start, code[e].end)),
                    None => regions.push((code[i].start, src.len())),
                }
                break;
            }
            k += 1;
        }
        i = k + 1;
    }
    regions
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn is_punct(src: &str, code: &[Token], i: usize, p: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == p)
}

fn is_ident(src: &str, code: &[Token], i: usize, name: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text(src) == name)
}

fn ident_at<'a>(src: &'a str, code: &[Token], i: usize) -> Option<&'a str> {
    code.get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src))
}

/// Index of the token closing the delimiter opened at `open_idx`.
fn matching_close(
    src: &str,
    code: &[Token],
    open_idx: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in code.iter().enumerate().skip(open_idx) {
        if t.kind == TokenKind::Punct {
            let s = t.text(src);
            if s == open {
                depth += 1;
            } else if s == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Map-name tracking
// ---------------------------------------------------------------------------

/// Names declared (anywhere in the file) with a `HashMap`/`HashSet` type
/// or initialized from a `HashMap::…`/`HashSet::…` constructor.
fn collect_map_names(src: &str, code: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        let Some(id) = ident_at(src, code, i) else {
            continue;
        };
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        // `let [mut] name = HashMap::new()` / `HashMap::with_capacity(…)`.
        if i >= 2 && is_punct(src, code, i - 1, "=") {
            if let Some(name) = ident_at(src, code, i - 2) {
                if name != "mut" {
                    names.insert(name.to_string());
                }
            }
            continue;
        }
        // `name: [&/mut/wrapper<…] [path::]HashMap<…>` — walk back over
        // references, `mut`, single-level wrappers (`Option<`, `Arc<`),
        // and `path::` segments to the declaring `name:`.
        let mut j = i;
        loop {
            if j >= 3
                && is_punct(src, code, j - 1, ":")
                && is_punct(src, code, j - 2, ":")
                && ident_at(src, code, j - 3).is_some()
            {
                j -= 3; // path segment `seg::`
                continue;
            }
            if j >= 1 && (is_punct(src, code, j - 1, "&") || is_ident(src, code, j - 1, "mut")) {
                j -= 1;
                continue;
            }
            if j >= 2 && is_punct(src, code, j - 1, "<") && ident_at(src, code, j - 2).is_some() {
                j -= 2; // wrapper like `Option<`, `Arc<`
                continue;
            }
            break;
        }
        // Declaration colon: single `:` (not `::`) preceded by the name.
        if j >= 2 && is_punct(src, code, j - 1, ":") && !is_punct(src, code, j - 2, ":") {
            if let Some(name) = ident_at(src, code, j - 2) {
                names.insert(name.to_string());
            }
        }
    }
    names
}

/// Names declared (anywhere in the file) with a fixed-size array type
/// (`name: [T; N]`) or initialized from an array literal (`let name =
/// […]`). Indexing these by an in-bounds integer literal is checked by
/// the compiler, so `panic-path` skips them — the dangerous receivers
/// are `Vec`s and slices.
fn collect_array_names(src: &str, code: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        if !is_punct(src, code, i, "[") {
            continue;
        }
        // `name: [T; N]` (fields, lets with annotation, params) — walk
        // back over `&`/`mut` to the declaring colon.
        let mut j = i;
        while j >= 1 && (is_punct(src, code, j - 1, "&") || is_ident(src, code, j - 1, "mut")) {
            j -= 1;
        }
        if j >= 2 && is_punct(src, code, j - 1, ":") && !is_punct(src, code, j - 2, ":") {
            if let Some(name) = ident_at(src, code, j - 2) {
                names.insert(name.to_string());
                continue;
            }
        }
        // `let [mut] name = [… ; N]` / `= [a, b, c]`.
        if i >= 2 && is_punct(src, code, i - 1, "=") {
            if let Some(name) = ident_at(src, code, i - 2) {
                if name != "mut" {
                    names.insert(name.to_string());
                }
            }
        }
    }
    names
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn rule_map_iteration(
    src: &str,
    code: &[Token],
    names: &BTreeSet<String>,
    out: &mut Vec<(&'static str, u32, usize, String)>,
) {
    for i in 0..code.len() {
        // `name.method(` where method is an iteration method.
        if let Some(m) = ident_at(src, code, i) {
            if ITER_METHODS.contains(&m)
                && is_punct(src, code, i.wrapping_sub(1), ".")
                && is_punct(src, code, i + 1, "(")
                && i >= 2
            {
                if let Some(recv) = ident_at(src, code, i - 2) {
                    if names.contains(recv) {
                        out.push((
                            "map-iteration",
                            code[i].line,
                            code[i].start,
                            format!(
                                "`{recv}.{m}()` iterates a HashMap/HashSet — order is \
                                 unspecified; use a BTreeMap/BTreeSet, sort first, or \
                                 mark the fold order-independent with lint:allow"
                            ),
                        ));
                    }
                }
            }
            // `for pat in [&|mut] [self.]name {`
            if m == "for" {
                // Find `in` before the loop `{` at delimiter depth 0.
                let mut depth = 0i64;
                let mut in_idx = None;
                for (j, tok) in code.iter().enumerate().skip(i + 1) {
                    let t = tok.text(src);
                    match t {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        "in" if depth == 0 && tok.kind == TokenKind::Ident => {
                            in_idx = Some(j);
                        }
                        _ => {}
                    }
                    if j > i + 64 {
                        break; // defensive bound on header length
                    }
                }
                let Some(start) = in_idx else { continue };
                // Expression tokens between `in` and `{` must be a bare
                // (possibly referenced / field-accessed) path ending in a
                // tracked name.
                let mut k = start + 1;
                let mut last_ident: Option<&str> = None;
                let mut bare = true;
                while k < code.len() {
                    let t = code[k].text(src);
                    if t == "{" {
                        break;
                    }
                    match (code[k].kind, t) {
                        (TokenKind::Punct, "&") | (TokenKind::Punct, ".") => {}
                        (TokenKind::Ident, "mut") => {}
                        (TokenKind::Ident, _) => last_ident = Some(t),
                        _ => {
                            bare = false;
                            break;
                        }
                    }
                    k += 1;
                }
                if bare {
                    if let Some(name) = last_ident {
                        if names.contains(name) {
                            out.push((
                                "map-iteration",
                                code[i].line,
                                code[i].start,
                                format!(
                                    "`for … in {name}` iterates a HashMap/HashSet — order \
                                     is unspecified; use a BTreeMap/BTreeSet, sort first, \
                                     or mark the body order-independent with lint:allow"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

const HOST_TIME_IDENTS: &[(&str, &str)] = &[
    ("Instant", "host monotonic clock"),
    ("SystemTime", "host wall clock"),
    ("thread_rng", "ambient thread-local RNG"),
    ("OsRng", "OS entropy source"),
    ("from_entropy", "OS entropy seeding"),
    ("getrandom", "OS entropy source"),
];

fn rule_host_time(src: &str, code: &[Token], out: &mut Vec<(&'static str, u32, usize, String)>) {
    for i in 0..code.len() {
        let Some(id) = ident_at(src, code, i) else {
            continue;
        };
        if let Some((_, what)) = HOST_TIME_IDENTS.iter().find(|(n, _)| *n == id) {
            out.push((
                "host-time",
                code[i].line,
                code[i].start,
                format!(
                    "`{id}` ({what}) in deterministic code — simulation state must \
                     derive only from the seed and the event timeline"
                ),
            ));
        }
        if id == "current"
            && i >= 3
            && is_ident(src, code, i - 3, "thread")
            && is_punct(src, code, i - 2, ":")
            && is_punct(src, code, i - 1, ":")
        {
            out.push((
                "host-time",
                code[i].line,
                code[i].start,
                "`std::thread::current()` in deterministic code — thread identity must \
                 never influence simulation state"
                    .to_string(),
            ));
        }
    }
}

const RNG_DRAWS: &[&str] = &[
    "gen",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "next_u32",
    "next_u64",
    "fill_bytes",
    "random",
];

fn rule_rng_in_branch(
    src: &str,
    code: &[Token],
    names: &BTreeSet<String>,
    out: &mut Vec<(&'static str, u32, usize, String)>,
) {
    // Collect block regions guarded by a condition that mentions a
    // tracked map name.
    let mut regions: Vec<(usize, usize)> = Vec::new();
    for i in 0..code.len() {
        let Some(kw) = ident_at(src, code, i) else {
            continue;
        };
        if kw != "if" && kw != "while" && kw != "match" {
            continue;
        }
        let mut depth = 0i64;
        let mut mentions_map = false;
        let mut open = None;
        for (j, tok) in code.iter().enumerate().skip(i + 1) {
            let t = tok.text(src);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                _ => {
                    if tok.kind == TokenKind::Ident && names.contains(t) {
                        mentions_map = true;
                    }
                }
            }
        }
        if !mentions_map {
            continue;
        }
        let Some(open) = open else { continue };
        let close = matching_close(src, code, open, "{", "}").unwrap_or(code.len() - 1);
        regions.push((code[open].start, code[close].end));
    }
    if regions.is_empty() {
        return;
    }
    for i in 0..code.len() {
        let Some(m) = ident_at(src, code, i) else {
            continue;
        };
        if RNG_DRAWS.contains(&m)
            && is_punct(src, code, i.wrapping_sub(1), ".")
            && is_punct(src, code, i + 1, "(")
            && regions
                .iter()
                .any(|&(s, e)| code[i].start >= s && code[i].start < e)
        {
            out.push((
                "rng-in-branch",
                code[i].line,
                code[i].start,
                format!(
                    "RNG draw `.{m}()` inside a branch conditioned on HashMap/HashSet \
                     state — the stream position would depend on unordered collection \
                     contents"
                ),
            ));
        }
    }
}

fn rule_unsafe_audit(
    src: &str,
    code: &[Token],
    comments: &[Token],
    out: &mut Vec<(&'static str, u32, usize, String)>,
) {
    // Per-line map: does a comment occupy this line, and does it carry a
    // SAFETY: tag? Block comments may span lines.
    let mut line_comment: std::collections::BTreeMap<u32, bool> = std::collections::BTreeMap::new();
    for c in comments {
        let text = c.text(src);
        let has_safety = text.contains("SAFETY:");
        let last = c.line + text.matches('\n').count() as u32;
        for l in c.line..=last {
            let e = line_comment.entry(l).or_insert(false);
            *e = *e || has_safety;
        }
    }
    for t in code {
        if t.kind != TokenKind::Ident || t.text(src) != "unsafe" {
            continue;
        }
        // Same line, or walk up through the adjacent comment block.
        let mut ok = line_comment.get(&t.line).copied().unwrap_or(false);
        let mut l = t.line.saturating_sub(1);
        while !ok {
            match line_comment.get(&l) {
                Some(true) => ok = true,
                Some(false) if l > 0 => l -= 1,
                _ => break,
            }
        }
        if !ok {
            out.push((
                "unsafe-audit",
                t.line,
                t.start,
                "`unsafe` without an adjacent `// SAFETY:` comment justifying why the \
                 invariants hold"
                    .to_string(),
            ));
        }
    }
}

fn rule_panic_path(src: &str, code: &[Token], out: &mut Vec<(&'static str, u32, usize, String)>) {
    let array_names = collect_array_names(src, code);
    for i in 0..code.len() {
        let t = &code[i];
        match t.kind {
            TokenKind::Ident => {
                let id = t.text(src);
                if (id == "unwrap" || id == "expect")
                    && is_punct(src, code, i.wrapping_sub(1), ".")
                    && is_punct(src, code, i + 1, "(")
                {
                    out.push((
                        "panic-path",
                        t.line,
                        t.start,
                        format!(
                            "`.{id}()` on a library path — return an error, prove the \
                             case impossible, or justify with lint:allow"
                        ),
                    ));
                }
                if id == "panic" && is_punct(src, code, i + 1, "!") {
                    out.push((
                        "panic-path",
                        t.line,
                        t.start,
                        "`panic!` on a library path — return an error or justify with \
                         lint:allow"
                            .to_string(),
                    ));
                }
            }
            // Fixed-size arrays are bounds-checked by the compiler, so a
            // literal index only fires on untracked receivers.
            TokenKind::Punct
                if t.text(src) == "["
                    && i >= 1
                    && matches!(
                        (code[i - 1].kind, code[i - 1].text(src)),
                        (TokenKind::Ident, _) | (TokenKind::Punct, ")") | (TokenKind::Punct, "]")
                    )
                    && code.get(i + 1).is_some_and(|n| n.kind == TokenKind::Int)
                    && is_punct(src, code, i + 2, "]")
                    && ident_at(src, code, i - 1).is_none_or(|r| !array_names.contains(r)) =>
            {
                out.push((
                    "panic-path",
                    t.line,
                    t.start,
                    "indexing by integer literal can panic — use `.get(n)` or \
                     justify with lint:allow"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}
