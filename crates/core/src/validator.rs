//! The WAKU-RLN-RELAY validation pipeline, plugged into GossipSub.
//!
//! §III "Routing and Slashing", in order:
//!
//! 1. verify the zkSNARK proof (discard on failure),
//! 2. check the message epoch against the local epoch
//!    (`|Δ| ≤ Thr = D/T`),
//! 3. look the internal nullifier up in the nullifier map; a collision
//!    with a distinct share is double-signaling — reconstruct the secret
//!    key and queue slashing evidence.
//!
//! The message is relayed only if all checks pass.
//!
//! Since the model-crate extraction, the order-sensitive stateful core
//! (steps 2–3 plus statistics, slashing enqueue and GC) is the **pure
//! transition function** [`wakurln_model::step`]; [`RlnValidator`] is a
//! thin stateful wrapper holding one [`wakurln_model::State`] plus the
//! things the model deliberately excludes — the verifying key (summarized
//! into the model's `proof_ok` input bit by the stateless stage) and the
//! batching pipeline. The equivalence suite in
//! `tests/model_equivalence.rs` holds the wrapper to the model bit for
//! bit.

use crate::codec::{decode_signal, WireSignal};
use crate::epoch::EpochScheme;
use crate::pipeline::{PipelineConfig, PipelineState, PipelineStats};
use wakurln_crypto::field::Fr;
use wakurln_gossipsub::{BatchDecision, SubmitOutcome, Topic, ValidationResult, Validator};
use wakurln_model::{apply_signal, Outcome, State};
use wakurln_relay::WakuMessage;
use wakurln_rln::{verify_signal, SignalValidity};
use wakurln_zksnark::VerifyingKey;

pub use wakurln_model::{CostModel, SpamDetection, ValidationStats};

/// The RLN validator state held by every routing peer: one pure
/// [`model state`](wakurln_model::State) driven through
/// [`wakurln_model::apply`], plus the verifying key for the stateless
/// proof stage and the optional batching pipeline.
#[derive(Clone, Debug)]
pub struct RlnValidator {
    verifying_key: VerifyingKey,
    /// The model-checked protocol state (roots, nullifier map,
    /// detections, statistics).
    state: State,
    last_cost: u64,
    /// Batched-validation state; `None` runs the serial per-message path.
    pipeline: Option<Box<PipelineState>>,
}

impl RlnValidator {
    /// Creates a validator; `initial_root` is the membership root known at
    /// startup (typically the empty tree).
    pub fn new(
        verifying_key: VerifyingKey,
        epoch_scheme: EpochScheme,
        initial_root: Fr,
        cost: CostModel,
    ) -> RlnValidator {
        RlnValidator {
            verifying_key,
            state: State::new(epoch_scheme, initial_root, cost),
            last_cost: 0,
            pipeline: None,
        }
    }

    /// Switches this validator into batched-pipeline mode (see
    /// [`crate::pipeline`]): subsequent [`Validator::submit`] calls defer
    /// decodable messages into an epoch-sharded batch that is drained by
    /// [`Validator::flush`]. Outcomes, statistics and detections are
    /// identical to the serial path; only the simulated CPU cost is
    /// amortized.
    pub fn enable_pipeline(&mut self, config: PipelineConfig) {
        self.pipeline = Some(Box::new(PipelineState::new(config)));
    }

    /// Whether batched-pipeline mode is on.
    pub fn pipeline_enabled(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Per-stage pipeline counters (`None` while in serial mode).
    pub fn pipeline_stats(&self) -> Option<PipelineStats> {
        self.pipeline.as_ref().map(|p| p.stats())
    }

    /// Number of entries in the pipeline's proof-verdict cache (`None`
    /// while in serial mode) — a boundedness series for the soak
    /// harness.
    pub fn verdict_cache_len(&self) -> Option<usize> {
        self.pipeline.as_ref().map(|p| p.cache_len())
    }

    /// The pure protocol state this wrapper drives — everything the
    /// §III decision core reads or writes. Equivalence tests compare
    /// these snapshots across implementations.
    pub fn model_state(&self) -> &State {
        &self.state
    }

    /// Registers a new membership root (called on every contract event the
    /// peer syncs). Keeps the last `root_window` roots acceptable.
    pub fn push_root(&mut self, root: Fr) {
        self.state.push_root(root);
    }

    /// The most recent root.
    pub fn current_root(&self) -> Fr {
        self.state.current_root()
    }

    /// Sets how many recent roots remain acceptable (default 8). A window
    /// of 1 accepts only the latest root: proofs generated moments before
    /// any membership change get rejected — the ablation
    /// `tests/ablation_root_window.rs` measures this design choice.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn set_root_window(&mut self, window: usize) {
        self.state.set_root_window(window);
    }

    /// Crash-recovery reset (a **cold** restart): drops every piece of
    /// in-memory validation state — the accepted-roots window collapses
    /// to `initial_root`, the nullifier map is emptied, undelivered
    /// detections and any pipeline backlog are discarded. Cumulative
    /// [`ValidationStats`] survive: they model the operator's metrics
    /// store, and the resilience reports compare pre- and post-crash
    /// counts. The subsequent group resync (event replay) rebuilds the
    /// root window to match the live network's.
    pub fn reset_state(&mut self, initial_root: Fr) {
        self.state.reset(initial_root);
        self.last_cost = 0;
        if let Some(pipeline) = &self.pipeline {
            let config = *pipeline.config();
            self.pipeline = Some(Box::new(PipelineState::new(config)));
        }
    }

    /// Validation statistics so far.
    pub fn stats(&self) -> ValidationStats {
        self.state.stats
    }

    /// Caught spammers not yet drained (the node submits these to the
    /// chain and clears the queue).
    pub fn detections(&self) -> &[SpamDetection] {
        &self.state.detections
    }

    /// Drains the detection queue.
    pub fn take_detections(&mut self) -> Vec<SpamDetection> {
        std::mem::take(&mut self.state.detections)
    }

    /// The epoch scheme in use.
    pub fn epoch_scheme(&self) -> EpochScheme {
        self.state.epoch_scheme
    }

    /// Current nullifier-map footprint in bytes (E8).
    pub fn nullifier_map_bytes(&self) -> usize {
        self.state.nullifier_map.memory_bytes()
    }

    /// Validates a decoded wire signal at local time `now_ms`. Exposed for
    /// direct use by tests and benchmarks; gossipsub goes through the
    /// [`Validator`] impl.
    pub fn validate_wire(&mut self, now_ms: u64, wire: &WireSignal) -> ValidationResult {
        let proof_ok = self.check_stateless(wire);
        self.finish_validation(now_ms, wire, proof_ok)
    }

    /// Validates a drained queue of wire signals in one call: the
    /// stateless stage (zkSNARK proof + root window + share binding) fans
    /// out across worker threads via [`SimSnark::verify_batch`]-style
    /// parallelism, then the stateful stage (epoch window, nullifier map,
    /// double-signal analysis) runs in queue order. Results are identical
    /// to calling [`RlnValidator::validate_wire`] per message in order.
    ///
    /// [`SimSnark::verify_batch`]: wakurln_zksnark::SimSnark::verify_batch
    pub fn validate_wire_batch(
        &mut self,
        now_ms: u64,
        wires: &[WireSignal],
    ) -> Vec<ValidationResult> {
        let validator = &*self;
        let proof_oks =
            wakurln_zksnark::parallel::par_map(wires, 2, |wire| validator.check_stateless(wire));
        wires
            .iter()
            .zip(proof_oks)
            .map(|(wire, proof_ok)| self.finish_validation(now_ms, wire, proof_ok))
            .collect()
    }

    /// Stage 1 — stateless checks: the proof root is in the accepted
    /// window and the signal (share binding + zkSNARK proof) verifies.
    fn check_stateless(&self, wire: &WireSignal) -> bool {
        self.state.root_accepted(&wire.signal.root)
            && verify_signal(&self.verifying_key, wire.signal.root, &wire.signal)
                == SignalValidity::Valid
    }

    /// Whether `root` is inside the accepted-roots window right now (the
    /// cheap half of the stateless stage; the pipeline snapshots it at
    /// arrival time, exactly when the serial path would evaluate it).
    pub(crate) fn root_accepted(&self, root: &Fr) -> bool {
        self.state.root_accepted(root)
    }

    /// The shared verifying key (pipeline batch verification).
    pub(crate) fn verifying_key(&self) -> &VerifyingKey {
        &self.verifying_key
    }

    /// The device cost model in effect.
    pub(crate) fn cost_model(&self) -> CostModel {
        self.state.cost
    }

    /// Stage 2 — stateful checks (epoch window, nullifier map) plus cost
    /// and statistics accounting for the whole pipeline.
    fn finish_validation(
        &mut self,
        now_ms: u64,
        wire: &WireSignal,
        proof_ok: bool,
    ) -> ValidationResult {
        let verify_cost = self.state.cost.verify_proof_micros;
        self.decide(now_ms, wire, proof_ok, verify_cost)
    }

    /// The order-sensitive stateful core shared by the serial path and the
    /// batched pipeline — one transition of the pure model
    /// ([`wakurln_model::apply`]): epoch window, nullifier map,
    /// double-signal analysis, statistics and cost accounting.
    /// `verify_cost` is the simulated CPU the caller actually spent on the
    /// stateless stage for this message (full proof verification serially;
    /// a cache/dedup probe when the pipeline skipped the zkSNARK), so
    /// batched runs report amortized per-device cost while producing
    /// identical outcomes.
    pub fn decide(
        &mut self,
        now_ms: u64,
        wire: &WireSignal,
        proof_ok: bool,
        verify_cost: u64,
    ) -> ValidationResult {
        let verdict = apply_signal(
            &mut self.state,
            now_ms,
            wire.epoch,
            &wire.signal,
            proof_ok,
            verify_cost,
        );
        self.last_cost = verdict.cost_micros;
        match verdict.outcome {
            Outcome::Accept => ValidationResult::Accept,
            Outcome::Ignore => ValidationResult::Ignore,
            Outcome::Reject => ValidationResult::Reject,
        }
    }
}

impl RlnValidator {
    /// Decodes a gossip payload down to the RLN wire signal, counting
    /// malformed frames.
    fn decode_frame(&mut self, data: &[u8]) -> Option<WireSignal> {
        let wire = WakuMessage::decode(data)
            .ok()
            .and_then(|waku| decode_signal(&waku.payload).ok());
        if wire.is_none() {
            self.state.stats.malformed += 1;
            self.last_cost = self.state.cost.epoch_check_micros;
        }
        wire
    }
}

impl Validator for RlnValidator {
    fn validate(&mut self, now_ms: u64, _topic: &Topic, data: &[u8]) -> ValidationResult {
        let Some(wire) = self.decode_frame(data) else {
            return ValidationResult::Reject;
        };
        self.validate_wire(now_ms, &wire)
    }

    fn last_cost_micros(&self) -> u64 {
        self.last_cost
    }

    fn submit(&mut self, now_ms: u64, topic: &Topic, data: &[u8]) -> SubmitOutcome {
        if self.pipeline.is_none() {
            return SubmitOutcome::Decided(self.validate(now_ms, topic, data));
        }
        let Some(wire) = self.decode_frame(data) else {
            return SubmitOutcome::Decided(ValidationResult::Reject);
        };
        // stage 1 — decode (above) + cheap arrival-time snapshots: the
        // root-window membership is evaluated now, exactly when the
        // serial path would have evaluated it
        let root_ok = self.root_accepted(&wire.signal.root);
        // lint:allow(panic-path, reason = "guarded: the enclosing branch runs only when self.pipeline.is_some()")
        let pipeline = self.pipeline.as_mut().expect("checked above");
        SubmitOutcome::Deferred(pipeline.enqueue(now_ms, wire, root_ok))
    }

    fn flush_due(&self) -> bool {
        self.pipeline.as_ref().is_some_and(|p| p.flush_due())
    }

    fn flush(&mut self, now_ms: u64) -> Vec<BatchDecision> {
        let Some(mut pipeline) = self.pipeline.take() else {
            return Vec::new();
        };
        let decisions = pipeline.flush(self, now_ms);
        self.pipeline = Some(pipeline);
        decisions
    }

    fn flush_interval_ms(&self) -> Option<u64> {
        self.pipeline.as_ref().map(|p| p.config().flush_interval_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wakurln_rln::{create_signal, Identity, RlnGroup};
    use wakurln_zksnark::{ProvingKey, RlnCircuit, SimSnark};

    struct Fixture {
        validator: RlnValidator,
        group: RlnGroup,
        id: Identity,
        index: u64,
        pk: ProvingKey,
        rng: StdRng,
        scheme: EpochScheme,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(41);
        let depth = 10;
        let (pk, vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let mut group = RlnGroup::new(depth).unwrap();
        let id = Identity::random(&mut rng);
        let index = group.register(id.commitment()).unwrap();
        let scheme = EpochScheme::new(10, 20_000); // Thr = 2
        let validator = RlnValidator::new(vk, scheme, group.root(), CostModel::default());
        Fixture {
            validator,
            group,
            id,
            index,
            pk,
            rng,
            scheme,
        }
    }

    fn wire_at(f: &mut Fixture, now_ms: u64, msg: &[u8]) -> WireSignal {
        let epoch = f.scheme.epoch_at_ms(now_ms);
        let signal = create_signal(
            &f.id,
            &f.group.membership_proof(f.index).unwrap(),
            f.group.root(),
            &f.pk,
            f.scheme.to_field(epoch),
            msg,
            &mut f.rng,
        )
        .unwrap();
        WireSignal { epoch, signal }
    }

    #[test]
    fn honest_message_accepted() {
        let mut f = fixture();
        let wire = wire_at(&mut f, 1000, b"hi");
        assert_eq!(
            f.validator.validate_wire(1000, &wire),
            ValidationResult::Accept
        );
        assert_eq!(f.validator.stats().valid, 1);
        // cost charged ≈ verification cost
        assert!(f.validator.last_cost_micros() >= 30_000);
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut f = fixture();
        let mut wire = wire_at(&mut f, 1000, b"hi");
        wire.signal.proof.binding[0] ^= 1;
        assert_eq!(
            f.validator.validate_wire(1000, &wire),
            ValidationResult::Reject
        );
        assert_eq!(f.validator.stats().invalid_proof, 1);
    }

    #[test]
    fn unknown_root_rejected() {
        let mut f = fixture();
        let wire = wire_at(&mut f, 1000, b"hi");
        let fresh_vk_validator = &mut f.validator;
        // simulate a validator that never saw this root
        let mut other = RlnValidator::new(
            fresh_vk_validator.verifying_key.clone(),
            f.scheme,
            Fr::from_u64(12345),
            CostModel::default(),
        );
        assert_eq!(other.validate_wire(1000, &wire), ValidationResult::Reject);
    }

    #[test]
    fn replayed_old_epoch_ignored() {
        let mut f = fixture();
        let wire = wire_at(&mut f, 1000, b"hi"); // epoch at t=1s
                                                 // 50 s later (Thr = 2 epochs = 20 s): out of window
        assert_eq!(
            f.validator.validate_wire(51_000, &wire),
            ValidationResult::Ignore
        );
        assert_eq!(f.validator.stats().epoch_out_of_window, 1);
    }

    #[test]
    fn future_epoch_ignored() {
        let mut f = fixture();
        let wire = wire_at(&mut f, 100_000, b"hi");
        assert_eq!(
            f.validator.validate_wire(1_000, &wire),
            ValidationResult::Ignore
        );
    }

    #[test]
    fn double_signal_detected_and_secret_reconstructed() {
        let mut f = fixture();
        let w1 = wire_at(&mut f, 1000, b"first");
        let w2 = wire_at(&mut f, 1500, b"second"); // same epoch (T = 10 s)
        assert_eq!(
            f.validator.validate_wire(1000, &w1),
            ValidationResult::Accept
        );
        assert_eq!(
            f.validator.validate_wire(1500, &w2),
            ValidationResult::Reject
        );
        assert_eq!(f.validator.stats().spam_detected, 1);
        let detections = f.validator.take_detections();
        assert_eq!(detections.len(), 1);
        assert_eq!(detections[0].evidence.revealed_secret, f.id.secret());
        assert_eq!(detections[0].evidence.commitment, f.id.commitment());
        // queue drained
        assert!(f.validator.detections().is_empty());
    }

    #[test]
    fn batch_validation_matches_sequential() {
        // two identically-configured validators; one drains the queue in
        // a batch, the other message by message — outcomes and stats must
        // agree, including the double-signal pair inside the batch
        let mut f = fixture();
        let wires = vec![
            wire_at(&mut f, 1_000, b"first"),
            wire_at(&mut f, 11_000, b"next-epoch"),
            {
                let mut tampered = wire_at(&mut f, 1_200, b"bad");
                tampered.signal.proof.binding[0] ^= 1;
                tampered
            },
            wire_at(&mut f, 1_500, b"double-signal"), // same epoch as "first"
            wire_at(&mut f, 51_000, b"stale"),        // far-future epoch
        ];
        let mut sequential = f.validator.clone();
        let seq_results: Vec<ValidationResult> = wires
            .iter()
            .map(|w| sequential.validate_wire(11_000, w))
            .collect();
        let batch_results = f.validator.validate_wire_batch(11_000, &wires);
        assert_eq!(batch_results, seq_results);
        assert_eq!(f.validator.stats(), sequential.stats());
        assert_eq!(f.validator.detections(), sequential.detections());
        // the whole model state agrees, not just its observable slices
        assert_eq!(f.validator.model_state(), sequential.model_state());
        assert_eq!(f.validator.stats().spam_detected, 1);
        assert_eq!(f.validator.stats().invalid_proof, 1);
    }

    #[test]
    fn identical_message_is_duplicate_not_spam() {
        let mut f = fixture();
        let w1 = wire_at(&mut f, 1000, b"same");
        assert_eq!(
            f.validator.validate_wire(1000, &w1),
            ValidationResult::Accept
        );
        assert_eq!(
            f.validator.validate_wire(1200, &w1),
            ValidationResult::Ignore
        );
        assert_eq!(f.validator.stats().duplicates, 1);
        assert_eq!(f.validator.stats().spam_detected, 0);
    }

    #[test]
    fn messages_in_different_epochs_both_accepted() {
        let mut f = fixture();
        let w1 = wire_at(&mut f, 1_000, b"a");
        let w2 = wire_at(&mut f, 11_000, b"b"); // next epoch
        assert_eq!(
            f.validator.validate_wire(1_000, &w1),
            ValidationResult::Accept
        );
        assert_eq!(
            f.validator.validate_wire(11_000, &w2),
            ValidationResult::Accept
        );
        assert_eq!(f.validator.stats().valid, 2);
    }

    #[test]
    fn root_window_tolerates_recent_membership_change() {
        let mut f = fixture();
        let wire = wire_at(&mut f, 1000, b"pre-change");
        // a new member registers; root advances
        let newcomer = Identity::from_secret(Fr::from_u64(777));
        f.group.register(newcomer.commitment()).unwrap();
        f.validator.push_root(f.group.root());
        // the proof against the *old* root still validates (window)
        assert_eq!(
            f.validator.validate_wire(1000, &wire),
            ValidationResult::Accept
        );
        assert_eq!(f.validator.current_root(), f.group.root());
    }

    #[test]
    fn root_window_is_bounded() {
        let mut f = fixture();
        let original_root = f.group.root();
        for i in 0..20u64 {
            f.validator.push_root(Fr::from_u64(i));
        }
        assert!(!f.validator.model_state().root_accepted(&original_root));
        assert!(f.validator.model_state().accepted_roots.len() <= 8);
    }

    #[test]
    fn malformed_payload_rejected_via_validator_trait() {
        let mut f = fixture();
        let result = Validator::validate(
            &mut f.validator,
            1000,
            &Topic::new("t"),
            b"not a waku message",
        );
        assert_eq!(result, ValidationResult::Reject);
        assert_eq!(f.validator.stats().malformed, 1);
    }
}
