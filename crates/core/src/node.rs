//! The WAKU-RLN-RELAY peer.

use crate::codec::encode_signal;
use crate::epoch::EpochScheme;
use crate::validator::RlnValidator;
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::{zero_hashes, MerkleError, MerkleProof, SyncedPathTree, EMPTY_LEAF};
use wakurln_gossipsub::{GossipsubConfig, MessageId, Rpc, ScoringConfig, Topic};
use wakurln_netsim::{Context, Node, NodeId};
use wakurln_relay::{WakuMessage, WakuRelayNode};
use wakurln_rln::{create_signal, Identity};
use wakurln_zksnark::{ProveError, ProvingKey};

/// Errors from publishing through the RLN pipeline.
#[derive(Debug)]
pub enum PublishError {
    /// This peer holds no registered identity (not a group member yet).
    NotRegistered,
    /// The local rate limiter refused: one message per epoch (§III).
    RateLimited {
        /// The epoch in which this peer already published.
        epoch: u64,
    },
    /// Proof generation failed (stale membership state).
    Prove(ProveError),
    /// The local tree has no own-path (membership was slashed remotely).
    MembershipLost,
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::NotRegistered => write!(f, "peer holds no registered RLN identity"),
            PublishError::RateLimited { epoch } => {
                write!(f, "already published in epoch {epoch} (limit: 1 per epoch)")
            }
            PublishError::Prove(e) => write!(f, "proof generation failed: {e}"),
            PublishError::MembershipLost => write!(f, "membership was removed from the tree"),
        }
    }
}

impl std::error::Error for PublishError {}

impl From<ProveError> for PublishError {
    fn from(e: ProveError) -> PublishError {
        PublishError::Prove(e)
    }
}

/// A full WAKU-RLN-RELAY peer: WAKU-RELAY routing + the RLN validator +
/// a light membership view + the publishing pipeline.
///
/// Peers keep the membership tree **off-chain** (§III): this node uses the
/// O(depth) [`SyncedPathTree`], updated from contract events delivered by
/// the harness, so a depth-20 group costs ~1.3 KB instead of 67 MB (E3).
#[derive(Clone)]
pub struct RlnRelayNode {
    relay: WakuRelayNode<RlnValidator>,
    tree: SyncedPathTree,
    identity: Option<Identity>,
    proving_key: ProvingKey,
    epoch_scheme: EpochScheme,
    last_published_epoch: Option<u64>,
    content_topic: String,
    /// Count of publishes refused by the local rate limiter.
    pub rate_limited_count: u64,
    /// Censorship-eclipse behaviour: when set, incoming `Forward` frames
    /// are silently dropped while all control traffic (subscriptions,
    /// grafts, pings) is answered normally — the peer looks healthy to
    /// its mesh neighbours but starves them of messages.
    censor: bool,
}

impl RlnRelayNode {
    /// Creates a peer. `proving_key`/validator must come from the same
    /// trusted setup across the network.
    pub fn new(
        known_peers: Vec<NodeId>,
        validator: RlnValidator,
        proving_key: ProvingKey,
        tree_depth: usize,
        gossip: GossipsubConfig,
        scoring: ScoringConfig,
    ) -> RlnRelayNode {
        let epoch_scheme = validator.epoch_scheme();
        RlnRelayNode {
            relay: WakuRelayNode::new(
                gossip,
                scoring,
                known_peers,
                validator,
                Topic::new(wakurln_relay::DEFAULT_PUBSUB_TOPIC),
            ),
            tree: SyncedPathTree::new(tree_depth).expect("valid depth"),
            identity: None,
            proving_key,
            epoch_scheme,
            last_published_epoch: None,
            content_topic: "/waku/rln/1/chat/proto".to_string(),
            rate_limited_count: 0,
            censor: false,
        }
    }

    /// Switches censorship-eclipse behaviour on or off (the targeted
    /// eclipse adversary of the scenario library): a censoring peer
    /// participates in every control exchange but drops all message
    /// forwards, so a victim whose whole bootstrap set censors is
    /// isolated from honest traffic without noticing a failure.
    pub fn set_censor(&mut self, censor: bool) {
        self.censor = censor;
    }

    /// Whether this peer is currently censoring (see
    /// [`RlnRelayNode::set_censor`]).
    pub fn is_censor(&self) -> bool {
        self.censor
    }

    /// Assigns the identity this peer will register with.
    pub fn set_identity(&mut self, identity: Identity) {
        self.identity = Some(identity);
    }

    /// This peer's identity, if any.
    pub fn identity(&self) -> Option<&Identity> {
        self.identity.as_ref()
    }

    /// Whether this peer currently holds a provable membership.
    pub fn is_member(&self) -> bool {
        self.tree.own_proof().is_some()
    }

    /// The local view of the membership root.
    pub fn membership_root(&self) -> Fr {
        self.tree.root()
    }

    /// Applies a `MemberRegistered` contract event. If the commitment is
    /// our own identity's, the own-path is snapshotted.
    ///
    /// # Errors
    ///
    /// Propagates tree errors (full tree).
    pub fn apply_registration(&mut self, commitment: Fr) -> Result<u64, MerkleError> {
        let is_own = self
            .identity
            .map(|id| id.commitment() == commitment && self.tree.own_index().is_none())
            .unwrap_or(false);
        let index = if is_own {
            self.tree.register_own(commitment)?
        } else {
            self.tree.apply_append(commitment)?
        };
        self.relay.validator_mut().push_root(self.tree.root());
        Ok(index)
    }

    /// Applies a burst of consecutive `MemberRegistered` events in one
    /// batched tree update (`O(n + depth)` hashes via
    /// [`SyncedPathTree::apply_append_batch`] instead of `O(n · depth)`
    /// for per-event [`RlnRelayNode::apply_registration`]), splitting
    /// around our own commitment so the own-path snapshot still happens.
    ///
    /// [`SyncedPathTree::apply_append_batch`]: wakurln_crypto::merkle::SyncedPathTree::apply_append_batch
    ///
    /// The accepted-roots window advances **once per burst** (only the
    /// post-burst root enters the window), whereas per-event application
    /// pushes every intermediate root. This is sound as long as all peers
    /// sync registration bursts at the same granularity — here, per mined
    /// block — since proofs are only ever generated against roots some
    /// peer's tree exposed after a sync. Mixing per-event and batched
    /// sync across peers would make mid-burst roots unverifiable.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::TreeFull`] **without modifying the tree or
    /// the root window** when the burst exceeds remaining capacity.
    pub fn apply_registrations(&mut self, commitments: &[Fr]) -> Result<(), MerkleError> {
        if commitments.is_empty() {
            return Ok(());
        }
        // atomicity: reject the whole burst up front, so a failure cannot
        // leave the tree advanced but the root window stale
        let remaining = (1u64 << self.tree.depth()) - self.tree.len();
        if commitments.len() as u64 > remaining {
            return Err(MerkleError::TreeFull);
        }
        let own_pos = match self.identity {
            Some(id) if self.tree.own_index().is_none() => {
                commitments.iter().position(|c| *c == id.commitment())
            }
            _ => None,
        };
        match own_pos {
            Some(pos) => {
                self.tree.apply_append_batch(&commitments[..pos])?;
                self.tree.register_own(commitments[pos])?;
                self.tree.apply_append_batch(&commitments[pos + 1..])?;
            }
            None => {
                self.tree.apply_append_batch(commitments)?;
            }
        }
        self.relay.validator_mut().push_root(self.tree.root());
        Ok(())
    }

    /// Applies a `MemberSlashed` contract event, authenticated by the
    /// witness path distributed with the event.
    ///
    /// # Errors
    ///
    /// Propagates tree errors (stale witness, bad index).
    pub fn apply_slashing(
        &mut self,
        index: u64,
        commitment: Fr,
        witness: &MerkleProof,
    ) -> Result<(), MerkleError> {
        self.tree
            .apply_update_with_witness(index, commitment, EMPTY_LEAF, witness)?;
        self.relay.validator_mut().push_root(self.tree.root());
        Ok(())
    }

    /// Publishes an application payload through the full RLN pipeline:
    /// local rate-limit check, signal creation (proof generation), WAKU
    /// encoding, gossip publish.
    ///
    /// # Errors
    ///
    /// See [`PublishError`]; in particular the local limiter refuses a
    /// second message in one epoch — honest peers never double-signal.
    pub fn publish(
        &mut self,
        ctx: &mut Context<Rpc>,
        payload: &[u8],
    ) -> Result<MessageId, PublishError> {
        let epoch = self.epoch_scheme.epoch_at_ms(ctx.now());
        if self.last_published_epoch == Some(epoch) {
            self.rate_limited_count += 1;
            return Err(PublishError::RateLimited { epoch });
        }
        let id = self.publish_unchecked(ctx, payload)?;
        self.last_published_epoch = Some(epoch);
        Ok(id)
    }

    /// Publishes **bypassing the local rate limiter** — the double-signal
    /// attack primitive used by the spam experiments. The network-side
    /// defenses (nullifier maps on every router) must catch this.
    ///
    /// # Errors
    ///
    /// See [`PublishError`] (all but `RateLimited` still apply).
    pub fn publish_unchecked(
        &mut self,
        ctx: &mut Context<Rpc>,
        payload: &[u8],
    ) -> Result<MessageId, PublishError> {
        self.publish_with_epoch_offset(ctx, payload, 0)
    }

    /// Publishes with a forged epoch `current + offset` — the replay /
    /// future-dating attack primitive of experiment E7. The proof itself
    /// is valid for the forged epoch (a newly registered spammer *can*
    /// prove past epochs); only the routers' `Thr` window stops it.
    ///
    /// # Errors
    ///
    /// See [`PublishError`].
    pub fn publish_with_epoch_offset(
        &mut self,
        ctx: &mut Context<Rpc>,
        payload: &[u8],
        epoch_offset: i64,
    ) -> Result<MessageId, PublishError> {
        let identity = self.identity.ok_or(PublishError::NotRegistered)?;
        let proof = self.tree.own_proof().ok_or(PublishError::MembershipLost)?;
        let epoch = self
            .epoch_scheme
            .epoch_at_ms(ctx.now())
            .saturating_add_signed(epoch_offset);
        let signal = create_signal(
            &identity,
            &proof,
            self.tree.root(),
            &self.proving_key,
            self.epoch_scheme.to_field(epoch),
            payload,
            ctx.rng(),
        )?;
        let waku = WakuMessage::new(self.content_topic.clone(), encode_signal(epoch, &signal));
        ctx.count("rln_published", 1);
        Ok(self.relay.publish(ctx, &waku))
    }

    /// Injects a raw WAKU message **without any RLN fields** — the
    /// junk-injection attack primitive (a peer spraying malformed frames).
    /// Honest relayers reject these at validation and penalize the
    /// forwarding peer's score.
    pub fn inject_raw(&mut self, ctx: &mut Context<Rpc>, waku: &WakuMessage) -> MessageId {
        self.relay.publish(ctx, waku)
    }

    /// Application deliveries: decoded `(payload, arrival_ms)` pairs of
    /// accepted RLN messages.
    pub fn app_deliveries(&self) -> Vec<(Vec<u8>, u64)> {
        self.relay
            .waku_deliveries()
            .into_iter()
            .filter_map(|(waku, at)| {
                crate::codec::decode_signal(&waku.payload)
                    .ok()
                    .map(|wire| (wire.signal.message, at))
            })
            .collect()
    }

    /// The RLN validator (stats, detections, nullifier map).
    pub fn validator(&self) -> &RlnValidator {
        self.relay.validator()
    }

    /// Mutable validator access (the harness drains detections).
    pub fn validator_mut(&mut self) -> &mut RlnValidator {
        self.relay.validator_mut()
    }

    /// The underlying relay node (mesh/scoring diagnostics).
    pub fn relay(&self) -> &WakuRelayNode<RlnValidator> {
        &self.relay
    }

    /// Mutable access to the relay layer (the soak harness drains the
    /// gossipsub delivery tape through this so day-long runs don't
    /// accumulate an unbounded delivery log).
    pub fn relay_mut(&mut self) -> &mut WakuRelayNode<RlnValidator> {
        &mut self.relay
    }

    /// Switches the passive observer tap (the colluding-surveillance
    /// adversary of the scenario library): while enabled, every incoming
    /// message forward is recorded with its previous hop and arrival
    /// time. Protocol behaviour is unchanged — the adversary is
    /// *passive*; only its post-run attribution analysis differs.
    pub fn set_observer(&mut self, observer: bool) {
        self.relay.set_observer(observer);
    }

    /// Wire-level observation records taken while the tap was enabled.
    pub fn observations(&self) -> &[wakurln_gossipsub::Observation] {
        self.relay.observations()
    }

    /// Light-tree storage footprint in bytes (E3).
    pub fn membership_storage_bytes(&self) -> usize {
        self.tree.storage_bytes()
    }

    /// Current mesh degree on the shared pub/sub topic — the recovery
    /// metric the fault scenarios sample to measure time-to-remesh after
    /// a restart or partition heal.
    pub fn mesh_size(&self) -> usize {
        self.relay
            .gossipsub()
            .mesh_peers(self.relay.pubsub_topic())
            .len()
    }

    /// **Cold-restart** reset: the simulated process came back with its
    /// disk wiped — the membership tree collapses to the empty group and
    /// the validator forgets its root window, nullifier map and pipeline
    /// backlog (see [`RlnValidator::reset_state`]). The identity keypair
    /// and the rate-limiter memory (`last_published_epoch`) survive: both
    /// model durable secrets an honest operator never risks — losing the
    /// limiter state could make an honest restart double-signal and burn
    /// its own stake. The harness follows this with a full group resync
    /// (event replay from genesis), which restores membership through the
    /// normal `register_own` path.
    pub fn reset_for_cold_restart(&mut self) {
        let depth = self.tree.depth();
        self.tree = SyncedPathTree::new(depth).expect("valid depth");
        self.relay.validator_mut().reset_state(zero_hashes()[depth]);
    }
}

impl Node for RlnRelayNode {
    type Message = Rpc;

    fn on_start(&mut self, ctx: &mut Context<Rpc>) {
        self.relay.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<Rpc>, from: NodeId, msg: Rpc) {
        if self.censor && matches!(msg, Rpc::Forward(_)) {
            ctx.count("censored_forwards", 1);
            return;
        }
        self.relay.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<Rpc>, token: u64) {
        self.relay.on_timer(ctx, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::CostModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wakurln_crypto::merkle::zero_hashes;
    use wakurln_gossipsub::{GossipsubConfig, ScoringConfig};
    use wakurln_zksnark::{RlnCircuit, SimSnark};

    fn node(depth: usize) -> RlnRelayNode {
        let mut rng = StdRng::seed_from_u64(5);
        let (pk, vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let validator = RlnValidator::new(
            vk,
            EpochScheme::default(),
            zero_hashes()[depth],
            CostModel::default(),
        );
        RlnRelayNode::new(
            vec![],
            validator,
            pk,
            depth,
            GossipsubConfig::default(),
            ScoringConfig::default(),
        )
    }

    #[test]
    fn apply_registrations_matches_per_event_application() {
        let commitments: Vec<Fr> = (0..7u64).map(|v| Fr::from_u64(v + 1000)).collect();
        let mut batched = node(4);
        batched.apply_registrations(&commitments).unwrap();
        let mut sequential = node(4);
        for c in &commitments {
            sequential.apply_registration(*c).unwrap();
        }
        assert_eq!(batched.membership_root(), sequential.membership_root());
    }

    #[test]
    fn oversized_registration_burst_is_rejected_atomically() {
        // depth 2 → capacity 4; a 5-commitment burst must fail without
        // touching the tree or the validator's root window, even when it
        // contains our own commitment past the capacity boundary
        let mut n = node(2);
        let id = Identity::from_secret(Fr::from_u64(9));
        n.set_identity(id);
        let mut burst: Vec<Fr> = (0..4u64).map(|v| Fr::from_u64(v + 1)).collect();
        burst.push(id.commitment());
        let root_before = n.membership_root();
        let window_root_before = n.validator().current_root();
        assert_eq!(
            n.apply_registrations(&burst),
            Err(wakurln_crypto::merkle::MerkleError::TreeFull)
        );
        assert_eq!(n.membership_root(), root_before);
        assert_eq!(n.validator().current_root(), window_root_before);
        assert!(!n.is_member(), "own registration must not have landed");
        // the tree is still usable afterwards
        n.apply_registrations(&burst[..4]).unwrap();
        assert_ne!(n.membership_root(), root_before);
    }
}
