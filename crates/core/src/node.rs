//! The WAKU-RLN-RELAY peer.

use crate::codec::encode_signal;
use crate::epoch::EpochScheme;
use crate::validator::RlnValidator;
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::{zero_hashes, AppendDelta, MemberView, MerkleError, UpdateDelta};
use wakurln_gossipsub::{GossipsubConfig, MessageId, Rpc, ScoringConfig, Topic};
use wakurln_netsim::{Context, Node, NodeId};
use wakurln_relay::{WakuMessage, WakuRelayNode};
use wakurln_rln::{create_signal, Identity};
use wakurln_zksnark::{ProveError, ProvingKey};

/// Errors from publishing through the RLN pipeline.
#[derive(Debug)]
pub enum PublishError {
    /// This peer holds no registered identity (not a group member yet).
    NotRegistered,
    /// The local rate limiter refused: one message per epoch (§III).
    RateLimited {
        /// The epoch in which this peer already published.
        epoch: u64,
    },
    /// Proof generation failed (stale membership state).
    Prove(ProveError),
    /// The local tree has no own-path (membership was slashed remotely).
    MembershipLost,
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::NotRegistered => write!(f, "peer holds no registered RLN identity"),
            PublishError::RateLimited { epoch } => {
                write!(f, "already published in epoch {epoch} (limit: 1 per epoch)")
            }
            PublishError::Prove(e) => write!(f, "proof generation failed: {e}"),
            PublishError::MembershipLost => write!(f, "membership was removed from the tree"),
        }
    }
}

impl std::error::Error for PublishError {}

impl From<ProveError> for PublishError {
    fn from(e: ProveError) -> PublishError {
        PublishError::Prove(e)
    }
}

/// A full WAKU-RLN-RELAY peer: WAKU-RELAY routing + the RLN validator +
/// a light membership view + the publishing pipeline.
///
/// Peers keep the membership tree **off-chain** (§III): this node holds
/// only the O(depth) [`MemberView`] — current root plus its own
/// authentication path — updated from the broadcast deltas the canonical
/// group tree emits, so a depth-20 group costs ~1.3 KB instead of 67 MB
/// (E3) and syncing a burst costs `O(depth)` lookups with **zero** local
/// hashing.
#[derive(Clone)]
pub struct RlnRelayNode {
    relay: WakuRelayNode<RlnValidator>,
    view: MemberView,
    identity: Option<Identity>,
    proving_key: ProvingKey,
    epoch_scheme: EpochScheme,
    last_published_epoch: Option<u64>,
    content_topic: String,
    /// Count of publishes refused by the local rate limiter.
    pub rate_limited_count: u64,
    /// Censorship-eclipse behaviour: when set, incoming `Forward` frames
    /// are silently dropped while all control traffic (subscriptions,
    /// grafts, pings) is answered normally — the peer looks healthy to
    /// its mesh neighbours but starves them of messages.
    censor: bool,
}

impl RlnRelayNode {
    /// Creates a peer. `proving_key`/validator must come from the same
    /// trusted setup across the network.
    pub fn new(
        known_peers: Vec<NodeId>,
        validator: RlnValidator,
        proving_key: ProvingKey,
        tree_depth: usize,
        gossip: GossipsubConfig,
        scoring: ScoringConfig,
    ) -> RlnRelayNode {
        let epoch_scheme = validator.epoch_scheme();
        RlnRelayNode {
            relay: WakuRelayNode::new(
                gossip,
                scoring,
                known_peers,
                validator,
                Topic::new(wakurln_relay::DEFAULT_PUBSUB_TOPIC),
            ),
            // lint:allow(panic-path, reason = "depth comes from NodeConfig, validated against the supported tree range at config construction")
            view: MemberView::new(tree_depth).expect("valid depth"),
            identity: None,
            proving_key,
            epoch_scheme,
            last_published_epoch: None,
            content_topic: "/waku/rln/1/chat/proto".to_string(),
            rate_limited_count: 0,
            censor: false,
        }
    }

    /// Switches censorship-eclipse behaviour on or off (the targeted
    /// eclipse adversary of the scenario library): a censoring peer
    /// participates in every control exchange but drops all message
    /// forwards, so a victim whose whole bootstrap set censors is
    /// isolated from honest traffic without noticing a failure.
    pub fn set_censor(&mut self, censor: bool) {
        self.censor = censor;
    }

    /// Whether this peer is currently censoring (see
    /// [`RlnRelayNode::set_censor`]).
    pub fn is_censor(&self) -> bool {
        self.censor
    }

    /// Assigns the identity this peer will register with.
    pub fn set_identity(&mut self, identity: Identity) {
        self.identity = Some(identity);
    }

    /// This peer's identity, if any.
    pub fn identity(&self) -> Option<&Identity> {
        self.identity.as_ref()
    }

    /// Whether this peer currently holds a provable membership.
    pub fn is_member(&self) -> bool {
        self.view.own_index().is_some()
    }

    /// The local view of the membership root.
    pub fn membership_root(&self) -> Fr {
        self.view.root()
    }

    /// Applies a registration-burst delta broadcast from the canonical
    /// group tree. `own_offset` marks this peer's position within the
    /// burst (the harness resolves it once per burst from a
    /// commitment→offset map); it is ignored when the peer already holds
    /// a membership. Costs `O(depth)` lookups — no hashing.
    ///
    /// The accepted-roots window advances **once per burst** (only the
    /// post-burst root enters the window). This is sound as long as all
    /// peers sync registration bursts at the same granularity — here, per
    /// mined block — since proofs are only ever generated against roots
    /// some peer's view exposed after a sync.
    ///
    /// # Errors
    ///
    /// Propagates [`MemberView::apply_append`] errors **without touching
    /// the view or the root window** (a stale delta cannot leave the view
    /// advanced but the window stale).
    pub fn apply_append_delta(
        &mut self,
        delta: &AppendDelta,
        own_offset: Option<u64>,
    ) -> Result<(), MerkleError> {
        let own_offset = match self.view.own_index() {
            Some(_) => None,
            None => own_offset,
        };
        self.view.apply_append(delta, own_offset)?;
        self.relay.validator_mut().push_root(self.view.root());
        Ok(())
    }

    /// Applies a single-leaf update delta (a `MemberSlashed` event). When
    /// the slashed leaf is this peer's own, the membership is revoked.
    ///
    /// # Errors
    ///
    /// Propagates [`MemberView::apply_update`] errors.
    pub fn apply_update_delta(&mut self, delta: &UpdateDelta) -> Result<(), MerkleError> {
        self.view.apply_update(delta)?;
        self.relay.validator_mut().push_root(self.view.root());
        Ok(())
    }

    /// Publishes an application payload through the full RLN pipeline:
    /// local rate-limit check, signal creation (proof generation), WAKU
    /// encoding, gossip publish.
    ///
    /// # Errors
    ///
    /// See [`PublishError`]; in particular the local limiter refuses a
    /// second message in one epoch — honest peers never double-signal.
    pub fn publish(
        &mut self,
        ctx: &mut Context<Rpc>,
        payload: &[u8],
    ) -> Result<MessageId, PublishError> {
        let epoch = self.epoch_scheme.epoch_at_ms(ctx.now());
        if self.last_published_epoch == Some(epoch) {
            self.rate_limited_count += 1;
            return Err(PublishError::RateLimited { epoch });
        }
        let id = self.publish_unchecked(ctx, payload)?;
        self.last_published_epoch = Some(epoch);
        Ok(id)
    }

    /// Publishes **bypassing the local rate limiter** — the double-signal
    /// attack primitive used by the spam experiments. The network-side
    /// defenses (nullifier maps on every router) must catch this.
    ///
    /// # Errors
    ///
    /// See [`PublishError`] (all but `RateLimited` still apply).
    pub fn publish_unchecked(
        &mut self,
        ctx: &mut Context<Rpc>,
        payload: &[u8],
    ) -> Result<MessageId, PublishError> {
        self.publish_with_epoch_offset(ctx, payload, 0)
    }

    /// Publishes with a forged epoch `current + offset` — the replay /
    /// future-dating attack primitive of experiment E7. The proof itself
    /// is valid for the forged epoch (a newly registered spammer *can*
    /// prove past epochs); only the routers' `Thr` window stops it.
    ///
    /// # Errors
    ///
    /// See [`PublishError`].
    pub fn publish_with_epoch_offset(
        &mut self,
        ctx: &mut Context<Rpc>,
        payload: &[u8],
        epoch_offset: i64,
    ) -> Result<MessageId, PublishError> {
        let identity = self.identity.ok_or(PublishError::NotRegistered)?;
        let proof = self.view.own_proof().ok_or(PublishError::MembershipLost)?;
        let epoch = self
            .epoch_scheme
            .epoch_at_ms(ctx.now())
            .saturating_add_signed(epoch_offset);
        let signal = create_signal(
            &identity,
            &proof,
            self.view.root(),
            &self.proving_key,
            self.epoch_scheme.to_field(epoch),
            payload,
            ctx.rng(),
        )?;
        let waku = WakuMessage::new(self.content_topic.clone(), encode_signal(epoch, &signal));
        ctx.count("rln_published", 1);
        Ok(self.relay.publish(ctx, &waku))
    }

    /// Injects a raw WAKU message **without any RLN fields** — the
    /// junk-injection attack primitive (a peer spraying malformed frames).
    /// Honest relayers reject these at validation and penalize the
    /// forwarding peer's score.
    pub fn inject_raw(&mut self, ctx: &mut Context<Rpc>, waku: &WakuMessage) -> MessageId {
        self.relay.publish(ctx, waku)
    }

    /// Application deliveries: decoded `(payload, arrival_ms)` pairs of
    /// accepted RLN messages.
    pub fn app_deliveries(&self) -> Vec<(Vec<u8>, u64)> {
        self.relay
            .waku_deliveries()
            .into_iter()
            .filter_map(|(waku, at)| {
                crate::codec::decode_signal(&waku.payload)
                    .ok()
                    .map(|wire| (wire.signal.message, at))
            })
            .collect()
    }

    /// The RLN validator (stats, detections, nullifier map).
    pub fn validator(&self) -> &RlnValidator {
        self.relay.validator()
    }

    /// Mutable validator access (the harness drains detections).
    pub fn validator_mut(&mut self) -> &mut RlnValidator {
        self.relay.validator_mut()
    }

    /// The underlying relay node (mesh/scoring diagnostics).
    pub fn relay(&self) -> &WakuRelayNode<RlnValidator> {
        &self.relay
    }

    /// Mutable access to the relay layer (the soak harness drains the
    /// gossipsub delivery tape through this so day-long runs don't
    /// accumulate an unbounded delivery log).
    pub fn relay_mut(&mut self) -> &mut WakuRelayNode<RlnValidator> {
        &mut self.relay
    }

    /// Switches the passive observer tap (the colluding-surveillance
    /// adversary of the scenario library): while enabled, every incoming
    /// message forward is recorded with its previous hop and arrival
    /// time. Protocol behaviour is unchanged — the adversary is
    /// *passive*; only its post-run attribution analysis differs.
    pub fn set_observer(&mut self, observer: bool) {
        self.relay.set_observer(observer);
    }

    /// Wire-level observation records taken while the tap was enabled.
    pub fn observations(&self) -> &[wakurln_gossipsub::Observation] {
        self.relay.observations()
    }

    /// Light-view storage footprint in bytes (E3): the root plus the own
    /// authentication path, independent of group size.
    pub fn membership_storage_bytes(&self) -> usize {
        self.view.storage_bytes()
    }

    /// Current mesh degree on the shared pub/sub topic — the recovery
    /// metric the fault scenarios sample to measure time-to-remesh after
    /// a restart or partition heal.
    pub fn mesh_size(&self) -> usize {
        self.relay
            .gossipsub()
            .mesh_peers(self.relay.pubsub_topic())
            .len()
    }

    /// **Cold-restart** reset: the simulated process came back with its
    /// disk wiped — the membership view collapses to the empty group and
    /// the validator forgets its root window, nullifier map and pipeline
    /// backlog (see [`RlnValidator::reset_state`]). The identity keypair
    /// and the rate-limiter memory (`last_published_epoch`) survive: both
    /// model durable secrets an honest operator never risks — losing the
    /// limiter state could make an honest restart double-signal and burn
    /// its own stake. The harness follows this with a full group resync
    /// (delta replay from genesis), which restores membership through the
    /// normal own-offset path.
    pub fn reset_for_cold_restart(&mut self) {
        let depth = self.view.depth();
        // lint:allow(panic-path, reason = "reset reuses the depth the existing view was built with, which was valid at construction")
        self.view = MemberView::new(depth).expect("valid depth");
        self.relay.validator_mut().reset_state(zero_hashes()[depth]);
    }
}

impl Node for RlnRelayNode {
    type Message = Rpc;

    fn on_start(&mut self, ctx: &mut Context<Rpc>) {
        self.relay.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<Rpc>, from: NodeId, msg: Rpc) {
        if self.censor && matches!(msg, Rpc::Forward(_)) {
            ctx.count("censored_forwards", 1);
            return;
        }
        self.relay.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<Rpc>, token: u64) {
        self.relay.on_timer(ctx, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::CostModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wakurln_crypto::merkle::zero_hashes;
    use wakurln_gossipsub::{GossipsubConfig, ScoringConfig};
    use wakurln_zksnark::{RlnCircuit, SimSnark};

    fn node(depth: usize) -> RlnRelayNode {
        let mut rng = StdRng::seed_from_u64(5);
        let (pk, vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let validator = RlnValidator::new(
            vk,
            EpochScheme::default(),
            zero_hashes()[depth],
            CostModel::default(),
        );
        RlnRelayNode::new(
            vec![],
            validator,
            pk,
            depth,
            GossipsubConfig::default(),
            ScoringConfig::default(),
        )
    }

    #[test]
    fn append_delta_tracks_canonical_tree_and_snapshots_own_path() {
        let mut canonical = wakurln_crypto::merkle::FullMerkleTree::new(4).unwrap();
        let id = Identity::from_secret(Fr::from_u64(9));
        let mut n = node(4);
        n.set_identity(id);

        let mut burst: Vec<Fr> = (0..3u64).map(|v| Fr::from_u64(v + 1000)).collect();
        burst.insert(1, id.commitment());
        let delta = canonical.append_batch_with_delta(&burst).unwrap();
        n.apply_append_delta(&delta, Some(1)).unwrap();
        assert_eq!(n.membership_root(), canonical.root());
        assert!(n.is_member(), "own registration did not land");
        assert_eq!(n.validator().current_root(), canonical.root());

        // a later foreign burst refreshes the own path, root window follows
        let delta = canonical
            .append_batch_with_delta(&[Fr::from_u64(7), Fr::from_u64(8)])
            .unwrap();
        n.apply_append_delta(&delta, None).unwrap();
        assert_eq!(n.membership_root(), canonical.root());
        assert!(n.is_member());
    }

    #[test]
    fn stale_delta_is_rejected_atomically() {
        // a delta that does not continue the view's leaf count must fail
        // without touching the view or the validator's root window
        let mut canonical = wakurln_crypto::merkle::FullMerkleTree::new(4).unwrap();
        let d1 = canonical
            .append_batch_with_delta(&[Fr::from_u64(1)])
            .unwrap();
        let d2 = canonical
            .append_batch_with_delta(&[Fr::from_u64(2)])
            .unwrap();
        let mut n = node(4);
        let root_before = n.membership_root();
        let window_root_before = n.validator().current_root();
        assert_eq!(
            n.apply_append_delta(&d2, None),
            Err(wakurln_crypto::merkle::MerkleError::StaleWitness)
        );
        assert_eq!(n.membership_root(), root_before);
        assert_eq!(n.validator().current_root(), window_root_before);
        // the view is still usable afterwards, in order
        n.apply_append_delta(&d1, None).unwrap();
        n.apply_append_delta(&d2, None).unwrap();
        assert_eq!(n.membership_root(), canonical.root());
    }

    #[test]
    fn update_delta_revokes_own_membership() {
        let mut canonical = wakurln_crypto::merkle::FullMerkleTree::new(4).unwrap();
        let id = Identity::from_secret(Fr::from_u64(11));
        let mut n = node(4);
        n.set_identity(id);
        let delta = canonical
            .append_batch_with_delta(&[id.commitment(), Fr::from_u64(5)])
            .unwrap();
        n.apply_append_delta(&delta, Some(0)).unwrap();
        assert!(n.is_member());

        let slash = canonical
            .set_with_delta(0, wakurln_crypto::merkle::EMPTY_LEAF)
            .unwrap();
        n.apply_update_delta(&slash).unwrap();
        assert!(!n.is_member(), "slashed peer still claims membership");
        assert_eq!(n.membership_root(), canonical.root());
    }
}
