//! # waku-rln-relay
//!
//! The paper's primary contribution: **WAKU-RLN-RELAY**, an anonymous
//! peer-to-peer gossip-based routing protocol with privacy-preserving,
//! cryptoeconomically enforced spam protection
//! (*Privacy-Preserving Spam-Protected Gossip-Based Routing*, ICDCS 2022).
//!
//! Layered on the workspace substrates:
//!
//! * [`epoch`] — epochs as external nullifiers and the `Thr = D/T` window,
//! * [`codec`] — the RLN-signal wire format inside WAKU messages,
//! * [`nullifier_map`] — windowed double-signaling detection state,
//! * [`validator`] — the §III routing validation pipeline (proof → epoch →
//!   nullifier map), pluggable into GossipSub,
//! * [`pipeline`] — the staged, epoch-sharded batch pipeline that
//!   amortizes proof verification (dedup and verdict caching before
//!   zkSNARK work) while preserving the serial validator's outcomes,
//! * [`node`] — the full peer: light membership tree, rate-limited
//!   publishing (§III "Publishing"), slashing-event application, and the
//!   censorship-eclipse adversary mode used by the scenario library,
//! * [`harness`] — a whole-network testbed wiring peers to the simulated
//!   membership contract (§III registration, group sync, slashing
//!   round-trip) with churn support (crashes, late joins). Scenario
//!   composition on top of the testbed — topology, node mixes, churn
//!   schedules, attack timing — lives in the `wakurln-scenarios` crate;
//!   tests and `simctl` drive the harness through that engine.
//!
//! # End-to-end example
//!
//! ```
//! use waku_rln_relay::harness::{Testbed, TestbedConfig};
//!
//! let mut testbed = Testbed::build(TestbedConfig {
//!     n_peers: 6,
//!     tree_depth: 10,
//!     degree: 3,
//!     ..Default::default()
//! });
//! testbed.run(8_000, 1_000);                 // let gossip meshes form
//! testbed.publish(0, b"anonymous hello").unwrap();
//! testbed.run(15_000, 1_000);
//! assert!(testbed.delivery_count(b"anonymous hello", 0) >= 4);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codec;
pub mod epoch;
pub mod harness;
pub mod node;
pub mod nullifier_map;
pub mod pipeline;
pub mod validator;

pub use codec::{decode_signal, encode_signal, SignalCodecError, WireSignal};
pub use epoch::EpochScheme;
pub use harness::{PhaseTimings, Testbed, TestbedConfig};
pub use node::{PublishError, RlnRelayNode};
pub use nullifier_map::{NullifierMap, NullifierOutcome};
pub use pipeline::{PipelineConfig, PipelineStats};
pub use validator::{CostModel, RlnValidator, SpamDetection, ValidationStats};
