//! Wire codec for RLN signals carried inside [`WakuMessage`] payloads.
//!
//! [`WakuMessage`]: wakurln_relay::WakuMessage
//!
//! Layout (little-endian lengths, fixed-size field elements):
//!
//! ```text
//! epoch:u64 | root:32 | internal_nullifier:32 | x:32 | y:32
//! | proof_elements:4×32 | proof_binding:32 | msg_len:u32 | message
//! ```
//!
//! The external nullifier is carried as the raw `epoch` number; the field
//! element the proof is bound to is recomputed as `Fr::from_u64(epoch)`,
//! so a sender cannot claim one epoch in the envelope and prove another.

use wakurln_crypto::field::Fr;
use wakurln_crypto::shamir::Share;
use wakurln_rln::Signal;
use wakurln_zksnark::Proof;

/// Errors from [`decode_signal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalCodecError {
    /// Buffer too short for the fixed header or announced message length.
    Truncated,
    /// A 32-byte field encoding was not a reduced field element.
    InvalidFieldElement,
    /// Trailing bytes after the message.
    TrailingBytes,
}

impl std::fmt::Display for SignalCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignalCodecError::Truncated => write!(f, "signal truncated"),
            SignalCodecError::InvalidFieldElement => {
                write!(f, "non-canonical field element in signal")
            }
            SignalCodecError::TrailingBytes => write!(f, "trailing bytes after signal"),
        }
    }
}

impl std::error::Error for SignalCodecError {}

/// A decoded signal plus the raw epoch number from the envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSignal {
    /// The epoch number claimed by the sender.
    pub epoch: u64,
    /// The reassembled signal (external nullifier = `Fr::from_u64(epoch)`).
    pub signal: Signal,
}

/// Serializes a signal for transport. `epoch` must be the epoch number the
/// signal's external nullifier was derived from.
pub fn encode_signal(epoch: u64, signal: &Signal) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 32 * 9 + 4 + signal.message.len());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&signal.root.to_bytes_le());
    out.extend_from_slice(&signal.internal_nullifier.to_bytes_le());
    out.extend_from_slice(&signal.share.x.to_bytes_le());
    out.extend_from_slice(&signal.share.y.to_bytes_le());
    for word in &signal.proof.elements {
        out.extend_from_slice(word);
    }
    out.extend_from_slice(&signal.proof.binding);
    out.extend_from_slice(&(signal.message.len() as u32).to_le_bytes());
    out.extend_from_slice(&signal.message);
    out
}

fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], SignalCodecError> {
    if bytes.len() < n {
        return Err(SignalCodecError::Truncated);
    }
    let (head, rest) = bytes.split_at(n);
    *bytes = rest;
    Ok(head)
}

fn take_fr(bytes: &mut &[u8]) -> Result<Fr, SignalCodecError> {
    let raw = take(bytes, 32)?;
    let mut arr = [0u8; 32];
    arr.copy_from_slice(raw);
    Fr::from_bytes_le(&arr).ok_or(SignalCodecError::InvalidFieldElement)
}

/// Parses a signal produced by [`encode_signal`].
///
/// # Errors
///
/// Returns a [`SignalCodecError`] on any malformed input; never panics.
pub fn decode_signal(mut bytes: &[u8]) -> Result<WireSignal, SignalCodecError> {
    let epoch_raw = take(&mut bytes, 8)?;
    let mut epoch_arr = [0u8; 8];
    epoch_arr.copy_from_slice(epoch_raw);
    let epoch = u64::from_le_bytes(epoch_arr);

    let root = take_fr(&mut bytes)?;
    let internal_nullifier = take_fr(&mut bytes)?;
    let x = take_fr(&mut bytes)?;
    let y = take_fr(&mut bytes)?;

    let mut elements = [[0u8; 32]; 4];
    for word in elements.iter_mut() {
        word.copy_from_slice(take(&mut bytes, 32)?);
    }
    let mut binding = [0u8; 32];
    binding.copy_from_slice(take(&mut bytes, 32)?);

    let len_raw = take(&mut bytes, 4)?;
    let mut len_arr = [0u8; 4];
    len_arr.copy_from_slice(len_raw);
    let msg_len = u32::from_le_bytes(len_arr) as usize;
    let message = take(&mut bytes, msg_len)?.to_vec();
    if !bytes.is_empty() {
        return Err(SignalCodecError::TrailingBytes);
    }

    Ok(WireSignal {
        epoch,
        signal: Signal {
            message,
            external_nullifier: Fr::from_u64(epoch),
            internal_nullifier,
            share: Share { x, y },
            root,
            proof: Proof { elements, binding },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wakurln_rln::{create_signal, Identity, RlnGroup};
    use wakurln_zksnark::{RlnCircuit, SimSnark};

    fn sample_signal(epoch: u64, msg: &[u8]) -> Signal {
        let mut rng = StdRng::seed_from_u64(31);
        let depth = 10;
        let (pk, _) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let mut group = RlnGroup::new(depth).unwrap();
        let id = Identity::random(&mut rng);
        let index = group.register(id.commitment()).unwrap();
        create_signal(
            &id,
            &group.membership_proof(index).unwrap(),
            group.root(),
            &pk,
            Fr::from_u64(epoch),
            msg,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let sig = sample_signal(77, b"round trip me");
        let encoded = encode_signal(77, &sig);
        let wire = decode_signal(&encoded).unwrap();
        assert_eq!(wire.epoch, 77);
        assert_eq!(wire.signal, sig);
    }

    #[test]
    fn epoch_field_binding_is_recomputed() {
        let sig = sample_signal(77, b"x");
        let mut encoded = encode_signal(77, &sig);
        // attacker rewrites the epoch number in the envelope
        encoded[0] = 78;
        let wire = decode_signal(&encoded).unwrap();
        // the decoder derives the external nullifier from the envelope
        // epoch, so the proof (bound to epoch 77) will no longer verify
        assert_eq!(wire.signal.external_nullifier, Fr::from_u64(78));
        assert_ne!(wire.signal.external_nullifier, sig.external_nullifier);
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let encoded = encode_signal(5, &sample_signal(5, b"abc"));
        for cut in 0..encoded.len() {
            assert!(decode_signal(&encoded[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = encode_signal(5, &sample_signal(5, b"abc"));
        encoded.push(0);
        assert_eq!(
            decode_signal(&encoded),
            Err(SignalCodecError::TrailingBytes)
        );
    }

    #[test]
    fn non_canonical_field_rejected() {
        let mut encoded = encode_signal(5, &sample_signal(5, b"abc"));
        // overwrite the root with 0xFF…FF (≥ modulus)
        for b in encoded[8..40].iter_mut() {
            *b = 0xff;
        }
        assert_eq!(
            decode_signal(&encoded),
            Err(SignalCodecError::InvalidFieldElement)
        );
    }

    proptest! {
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode_signal(&bytes);
        }
    }
}
