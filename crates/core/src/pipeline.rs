//! The staged, epoch-sharded batch validation pipeline.
//!
//! The paper's §III routing loop verifies each message's zkSNARK proof
//! serially (≈30 ms per proof on an iPhone 8 per §IV), which caps relay
//! throughput at tens of messages per second per device. This module
//! restructures [`RlnValidator`] into an amortized batch pipeline while
//! producing **bit-for-bit the same outcomes** as the serial path — the
//! same [`ValidationResult`](wakurln_gossipsub::ValidationResult) per
//! message, the same
//! [`ValidationStats`](crate::validator::ValidationStats), the same
//! slashing detections in the same order (property-tested in
//! `tests/pipeline_equivalence.rs`).
//!
//! # Stages
//!
//! 1. **Decode + arrival snapshot** (at [`Validator::submit`] time):
//!    malformed frames are rejected immediately; decodable signals are
//!    queued together with their arrival time and an arrival-time
//!    snapshot of the accepted-roots window — the two inputs the serial
//!    path would have evaluated on the spot.
//! 2. **Dedup / double-signal routing before proof work** (at flush):
//!    every queued candidate is keyed by a collision-resistant statement
//!    digest. Candidates whose digest already has a cached verdict — a
//!    gossip re-delivery, a replay-wrapped copy of a signal this peer
//!    already judged, or a duplicate inside the same flush window —
//!    resolve without touching the zkSNARK verifier.
//! 3. **Batch verification**: the surviving unique statements drain into
//!    one [`verify_signal_batch`]-shaped parallel fan-out (inline on one
//!    core), and their verdicts enter the epoch-sharded LRU cache.
//! 4. **Stateful commit**: candidates are replayed in arrival order
//!    through the exact serial decision core
//!    ([`RlnValidator::decide`](crate::validator::RlnValidator)) — epoch
//!    window, nullifier map, double-signal analysis, GC — emitting one
//!    relay/slash decision per message plus per-stage [`PipelineStats`].
//!
//! # Why double-signal *candidates* still verify once
//!
//! A colliding-nullifier message with a **different** share is only
//! slashable spam if its proof verifies: skipping verification would let
//! an adversary fabricate share pairs that reconstruct garbage secrets
//! and pollute the slashing queue, and would diverge from the serial
//! validator (which rejects the forgery as an invalid proof, not as
//! spam). Each distinct spam message therefore pays for exactly one
//! verification — every re-delivery of it afterwards is absorbed by the
//! digest cache, so a replayed spam flood costs one hash per copy
//! instead of one proof verification per copy.
//!
//! # Epoch sharding
//!
//! The proof-verdict cache is sharded by message epoch and garbage
//! collected to the same symmetric `Thr` window as the §III epoch check:
//! shards behind the window can never produce a hit again, and shards
//! ahead of it carry attacker-chosen envelope epochs (which would
//! otherwise pin the cache forever), so both are dropped wholesale.
//! Capacity pressure is applied only *after* that GC, and evicts from
//! the oldest epoch first — the entries closest to aging out anyway —
//! so a batch of forged out-of-window epochs can never displace honest
//! in-window entries.
//!
//! [`RlnValidator`]: crate::validator::RlnValidator
//! [`Validator::submit`]: wakurln_gossipsub::Validator::submit
//! [`verify_signal_batch`]: wakurln_rln::verify_signal_batch

use crate::codec::WireSignal;
use crate::validator::RlnValidator;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use wakurln_crypto::sha256::Sha256;
use wakurln_gossipsub::{BatchDecision, Validator as _};
use wakurln_rln::{verify_signal, SignalValidity};

/// Knobs of the batched validation pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Flush as soon as this many messages are queued (the batch-size
    /// sweep in `BENCH_pipeline.json` varies this).
    pub max_batch: usize,
    /// Bounded staleness: the relay flushes at least this often even if
    /// the batch is not full, so a quiet mesh still forwards promptly.
    pub flush_interval_ms: u64,
    /// Total capacity of the epoch-sharded proof-verdict cache, in
    /// entries (one entry ≈ 40 bytes).
    pub cache_capacity: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            max_batch: 64,
            flush_interval_ms: 200,
            cache_capacity: 4096,
        }
    }
}

/// Per-stage counters of the batched pipeline (cumulative).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Messages enqueued by stage 1.
    pub submitted: u64,
    /// Non-empty flushes performed.
    pub flushes: u64,
    /// zkSNARK verifications actually executed (stage 3).
    pub proofs_verified: u64,
    /// Candidates resolved from the cross-flush verdict cache (stage 2).
    pub cache_hits: u64,
    /// Candidates resolved against an identical statement earlier in the
    /// *same* flush window (stage 2).
    pub batch_dedup_hits: u64,
    /// Candidates whose root was outside the accepted window at arrival
    /// — rejected without proof work, as the serial short-circuit does.
    pub root_window_skips: u64,
    /// Largest batch drained by a single flush.
    pub max_batch_observed: u64,
}

/// One queued message awaiting a flush.
#[derive(Clone, Debug)]
struct Candidate {
    ticket: u64,
    /// Arrival time — the stateful commit replays at this timestamp, so
    /// epoch windows and GC behave exactly as they would have serially.
    now_ms: u64,
    wire: WireSignal,
    /// Arrival-time snapshot of the accepted-roots window check.
    root_ok: bool,
    digest: [u8; 32],
}

/// Collision-resistant digest of the complete verification statement:
/// the hash of the signal's canonical wire encoding
/// ([`encode_signal`](crate::codec::encode_signal) — epoch, root,
/// internal nullifier, both share coordinates, proof elements, binding,
/// message).
///
/// The digest must cover **every** input [`verify_signal`] depends on,
/// not a sub-hash like `proof.binding`: the binding is attacker-supplied
/// bytes that are only *authenticated inside the verifier*, which
/// cache/dedup hits deliberately skip. A digest of
/// `(epoch, binding, message)` alone would let an adversary replay a
/// valid signal with a rewritten `internal_nullifier` or share — same
/// digest, so stage 2 would resolve the forgery against the honest
/// copy's cached `true` verdict, landing each mutation in a fresh
/// nullifier slot (unbounded rate-limit bypass) where the serial
/// validator rejects it as an invalid proof. Hashing the full encoding
/// makes equal digests imply byte-identical statements, which trivially
/// verify identically.
fn statement_digest(wire: &WireSignal) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"wakurln-stmt-v2");
    h.update(&crate::codec::encode_signal(wire.epoch, &wire.signal));
    h.finalize()
}

/// One epoch's slice of the verdict cache, with FIFO insertion order for
/// capacity eviction.
#[derive(Clone, Debug, Default)]
struct CacheShard {
    verdicts: HashMap<[u8; 32], bool>,
    order: VecDeque<[u8; 32]>,
}

/// The epoch-sharded proof-verdict cache (stage 2/3 state).
#[derive(Clone, Debug)]
struct ProofCache {
    capacity: usize,
    shards: BTreeMap<u64, CacheShard>,
    len: usize,
}

impl ProofCache {
    fn new(capacity: usize) -> ProofCache {
        ProofCache {
            capacity: capacity.max(1),
            shards: BTreeMap::new(),
            len: 0,
        }
    }

    fn get(&self, epoch: u64, digest: &[u8; 32]) -> Option<bool> {
        self.shards
            .get(&epoch)
            .and_then(|s| s.verdicts.get(digest).copied())
    }

    fn insert(&mut self, epoch: u64, digest: [u8; 32], verdict: bool) {
        let shard = self.shards.entry(epoch).or_default();
        if shard.verdicts.insert(digest, verdict).is_none() {
            shard.order.push_back(digest);
            self.len += 1;
        }
    }

    /// Evicts down to capacity, oldest epoch first (deferred to the end
    /// of a flush so a single oversized batch cannot evict its own
    /// entries mid-resolution).
    fn enforce_capacity(&mut self) {
        while self.len > self.capacity {
            let Some((&epoch, _)) = self.shards.iter().next() else {
                return;
            };
            // lint:allow(panic-path, reason = "the entry was inserted by the match arm above when this epoch was first observed")
            let shard = self.shards.get_mut(&epoch).expect("just observed");
            if let Some(old) = shard.order.pop_front() {
                shard.verdicts.remove(&old);
                self.len -= 1;
            }
            if shard.order.is_empty() {
                self.shards.remove(&epoch);
            }
        }
    }

    /// Drops every epoch shard outside the symmetric acceptance window
    /// `[current − thr, current + thr]` (the `within_window` rule of
    /// §III). Past epochs can never hit again; far-future epochs are
    /// attacker-chosen (a forged envelope epoch survives decoding), and
    /// keeping them would let a flood of `u64::MAX`-epoch statements pin
    /// the cache forever while capacity eviction — oldest epoch first —
    /// displaces every honest entry.
    fn gc(&mut self, current_epoch: u64, thr: u64) {
        let cutoff = current_epoch.saturating_sub(thr);
        let keep = self.shards.split_off(&cutoff);
        for (_, shard) in std::mem::replace(&mut self.shards, keep) {
            self.len -= shard.order.len();
        }
        let beyond = self
            .shards
            .split_off(&current_epoch.saturating_add(thr).saturating_add(1));
        for (_, shard) in beyond {
            self.len -= shard.order.len();
        }
    }
}

/// The batching state carried by a pipeline-enabled
/// [`RlnValidator`](crate::validator::RlnValidator).
#[derive(Clone, Debug)]
pub(crate) struct PipelineState {
    config: PipelineConfig,
    queue: Vec<Candidate>,
    cache: ProofCache,
    stats: PipelineStats,
    next_ticket: u64,
}

impl PipelineState {
    pub(crate) fn new(config: PipelineConfig) -> PipelineState {
        assert!(config.max_batch >= 1, "batch must hold at least a message");
        PipelineState {
            queue: Vec::with_capacity(config.max_batch),
            cache: ProofCache::new(config.cache_capacity),
            stats: PipelineStats::default(),
            next_ticket: 0,
            config,
        }
    }

    pub(crate) fn config(&self) -> &PipelineConfig {
        &self.config
    }

    pub(crate) fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Entries currently held in the proof-verdict cache across all epoch
    /// shards (a boundedness series for the soak harness).
    pub(crate) fn cache_len(&self) -> usize {
        self.cache.len
    }

    pub(crate) fn flush_due(&self) -> bool {
        self.queue.len() >= self.config.max_batch
    }

    /// Stage 1: queue a decoded signal with its arrival snapshots.
    pub(crate) fn enqueue(&mut self, now_ms: u64, wire: WireSignal, root_ok: bool) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.stats.submitted += 1;
        let digest = statement_digest(&wire);
        self.queue.push(Candidate {
            ticket,
            now_ms,
            wire,
            root_ok,
            digest,
        });
        ticket
    }

    /// Stages 2–4: resolve every queued candidate and emit its decision.
    pub(crate) fn flush(
        &mut self,
        validator: &mut RlnValidator,
        now_ms: u64,
    ) -> Vec<BatchDecision> {
        let candidates = std::mem::take(&mut self.queue);
        if candidates.is_empty() {
            return Vec::new();
        }
        self.stats.flushes += 1;
        self.stats.max_batch_observed = self.stats.max_batch_observed.max(candidates.len() as u64);

        // stage 2 — dedup/double-signal routing before proof work: route
        // every candidate whose statement verdict is already known (cache
        // or an identical statement earlier in this batch) around the
        // verifier
        let mut to_verify: Vec<usize> = Vec::new();
        let mut in_batch: HashSet<[u8; 32]> = HashSet::new();
        for (i, c) in candidates.iter().enumerate() {
            if !c.root_ok {
                self.stats.root_window_skips += 1;
            } else if self.cache.get(c.wire.epoch, &c.digest).is_some() {
                self.stats.cache_hits += 1;
            } else if !in_batch.insert(c.digest) {
                self.stats.batch_dedup_hits += 1;
            } else {
                to_verify.push(i);
            }
        }

        // stage 3 — batch verification of the surviving unique statements
        // (parallel fan-out with the `parallel` feature; inline on one
        // core), verdicts entering the epoch-sharded cache
        let vk = validator.verifying_key().clone();
        let jobs: Vec<&Candidate> = to_verify.iter().map(|i| &candidates[*i]).collect();
        let verdicts = wakurln_zksnark::parallel::par_map(&jobs, 2, |c| {
            verify_signal(&vk, c.wire.signal.root, &c.wire.signal) == SignalValidity::Valid
        });
        self.stats.proofs_verified += jobs.len() as u64;
        let mut verified_now = vec![false; candidates.len()];
        for (c, verdict) in jobs.iter().zip(verdicts) {
            self.cache.insert(c.wire.epoch, c.digest, verdict);
        }
        for i in to_verify {
            verified_now[i] = true;
        }

        // stage 4 — stateful commit, replayed in arrival order through
        // the exact serial decision core
        let cost = validator.cost_model();
        let mut decisions = Vec::with_capacity(candidates.len());
        for (i, c) in candidates.iter().enumerate() {
            let proof_ok = c.root_ok && self.cache.get(c.wire.epoch, &c.digest) == Some(true);
            // messages that actually hit the verifier are charged the full
            // modeled verification; everything else paid one digest probe
            let verify_cost = if verified_now[i] {
                cost.verify_proof_micros
            } else {
                cost.nullifier_check_micros
            };
            let result = validator.decide(c.now_ms, &c.wire, proof_ok, verify_cost);
            decisions.push(BatchDecision {
                ticket: c.ticket,
                result,
                cost_micros: validator.last_cost_micros(),
            });
        }

        // gc before capacity enforcement: out-of-window shards (stale or
        // forged far-future epochs) are dropped first, so oldest-first
        // capacity eviction only ever lands on in-window entries — a
        // batch of forged-epoch statements cannot displace honest ones
        let scheme = validator.epoch_scheme();
        self.cache
            .gc(scheme.epoch_at_ms(now_ms), scheme.threshold());
        self.cache.enforce_capacity();
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_caps_and_evicts_oldest_epoch_first() {
        let mut cache = ProofCache::new(4);
        for (epoch, tag) in [(1u64, 0u8), (1, 1), (2, 2), (2, 3), (3, 4), (3, 5)] {
            cache.insert(epoch, [tag; 32], true);
        }
        cache.enforce_capacity();
        assert_eq!(cache.len, 4);
        // the oldest epoch's entries went first
        assert_eq!(cache.get(1, &[0; 32]), None);
        assert_eq!(cache.get(1, &[1; 32]), None);
        assert_eq!(cache.get(3, &[5; 32]), Some(true));
    }

    #[test]
    fn cache_gc_follows_thr_window() {
        let mut cache = ProofCache::new(64);
        for epoch in 0..10u64 {
            cache.insert(epoch, [epoch as u8; 32], true);
        }
        cache.gc(9, 2);
        assert_eq!(cache.len, 3); // epochs 7, 8, 9
        assert_eq!(cache.get(6, &[6; 32]), None);
        assert_eq!(cache.get(7, &[7; 32]), Some(true));
    }

    #[test]
    fn cache_gc_drops_forged_future_epochs() {
        // an adversary-chosen far-future envelope epoch must not pin the
        // cache (oldest-first capacity eviction would otherwise displace
        // every honest entry before touching it)
        let mut cache = ProofCache::new(64);
        cache.insert(100, [1; 32], true); // in-window
        cache.insert(102, [2; 32], true); // in-window future (≤ thr ahead)
        cache.insert(u64::MAX, [3; 32], true); // forged
        cache.gc(100, 2);
        assert_eq!(cache.len, 2);
        assert_eq!(cache.get(102, &[2; 32]), Some(true));
        assert_eq!(cache.get(u64::MAX, &[3; 32]), None);
    }

    #[test]
    fn gc_before_capacity_protects_honest_entries_from_forged_epochs() {
        // flush order is gc-then-enforce: out-of-window shards must be
        // gone before capacity pressure (oldest epoch first) can touch
        // any honest in-window entry
        let mut cache = ProofCache::new(4);
        for tag in 0..4u8 {
            cache.insert(100 + u64::from(tag % 2), [tag; 32], true);
        }
        for tag in 10..14u8 {
            cache.insert(u64::MAX, [tag; 32], true); // forged far-future
        }
        cache.gc(100, 2);
        cache.enforce_capacity();
        assert_eq!(cache.len, 4);
        for tag in 0..4u8 {
            assert_eq!(
                cache.get(100 + u64::from(tag % 2), &[tag; 32]),
                Some(true),
                "honest entry {tag} was displaced by forged epochs"
            );
        }
    }

    #[test]
    fn statement_digest_covers_every_verifier_input() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use wakurln_crypto::field::Fr;
        use wakurln_rln::{create_signal, Identity, RlnGroup};
        use wakurln_zksnark::{RlnCircuit, SimSnark};

        let mut rng = StdRng::seed_from_u64(51);
        let depth = 10;
        let (pk, _) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let mut group = RlnGroup::new(depth).unwrap();
        let id = Identity::random(&mut rng);
        let index = group.register(id.commitment()).unwrap();
        let signal = create_signal(
            &id,
            &group.membership_proof(index).unwrap(),
            group.root(),
            &pk,
            Fr::from_u64(7),
            b"digest me",
            &mut rng,
        )
        .unwrap();
        let wire = WireSignal { epoch: 7, signal };
        let base = statement_digest(&wire);

        // every field verify_signal depends on must perturb the digest —
        // in particular the attacker-writable ones the proof binding
        // authenticates only inside the (skipped-on-cache-hit) verifier
        let mutations: Vec<(&str, WireSignal)> = vec![
            ("epoch", {
                let mut w = wire.clone();
                w.epoch += 1;
                w
            }),
            ("root", {
                let mut w = wire.clone();
                w.signal.root = Fr::from_u64(1234);
                w
            }),
            ("internal_nullifier", {
                let mut w = wire.clone();
                w.signal.internal_nullifier = Fr::from_u64(5678);
                w
            }),
            ("share.x", {
                let mut w = wire.clone();
                w.signal.share.x = Fr::from_u64(91011);
                w
            }),
            ("share.y", {
                let mut w = wire.clone();
                w.signal.share.y = Fr::from_u64(121314);
                w
            }),
            ("proof.elements", {
                let mut w = wire.clone();
                w.signal.proof.elements[0][0] ^= 1;
                w
            }),
            ("proof.binding", {
                let mut w = wire.clone();
                w.signal.proof.binding[0] ^= 1;
                w
            }),
            ("message", {
                let mut w = wire.clone();
                w.signal.message[0] ^= 1;
                w
            }),
        ];
        for (field, mutated) in mutations {
            assert_ne!(
                statement_digest(&mutated),
                base,
                "digest ignores {field}: a mutated statement would reuse \
                 the honest copy's cached verdict"
            );
        }
    }

    #[test]
    fn cache_insert_is_idempotent() {
        let mut cache = ProofCache::new(8);
        cache.insert(5, [9; 32], true);
        cache.insert(5, [9; 32], true);
        assert_eq!(cache.len, 1);
    }

    #[test]
    fn default_config_is_sane() {
        let config = PipelineConfig::default();
        assert!(config.max_batch >= 1);
        assert!(config.flush_interval_ms >= 1);
        assert!(config.cache_capacity >= config.max_batch);
    }
}
