//! The nullifier map (re-exported from the model crate).
//!
//! The windowed `(epoch, φ) → [sk]` double-signaling record is part of
//! the model-checked protocol core and lives in
//! [`wakurln_model::nullifier_map`]; this module re-exports it so
//! existing `waku_rln_relay::nullifier_map` paths keep working.

pub use wakurln_model::nullifier_map::*;
