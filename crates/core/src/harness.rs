//! Full-network testbed: WAKU-RLN-RELAY peers over the discrete-event
//! network, synchronized with the simulated membership contract.
//!
//! This stitches together every piece of Figure 1: peers register on the
//! chain (staking), sync the membership tree from contract events, publish
//! rate-limited anonymous messages over gossip, detect double-signaling in
//! their nullifier maps, and slash spammers back on the chain.

use crate::epoch::EpochScheme;
use crate::node::{PublishError, RlnRelayNode};
use crate::pipeline::PipelineConfig;
use crate::validator::{CostModel, RlnValidator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
// lint:allow(host-time, reason = "phase timing only: Instant feeds the host-side phase_timings accumulators, never simulation state")
use std::time::Instant;
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::{zero_hashes, AppendDelta, UpdateDelta};
use wakurln_ethsim::types::{Address, CallData, ChainEvent, Wei, ETHER};
use wakurln_ethsim::{Chain, ChainConfig};
use wakurln_gossipsub::{GossipsubConfig, MessageId, ScoringConfig};
use wakurln_netsim::{topology, Network, NodeId, QuiescenceOutcome, UniformLatency};
use wakurln_rln::{Identity, SharedGroup};
use wakurln_zksnark::{ProvingKey, RlnCircuit, SimSnark, VerifyingKey};

/// A processed membership event in the broadcast delta form peers
/// consume, kept so a late-joining or restarted peer can replay history.
/// Registration runs are stored at the same burst granularity live peers
/// applied them (one burst per sync slice), so a replaying newcomer's
/// accepted-roots window sees exactly the root sequence every live peer
/// pushed.
#[derive(Clone, Debug)]
enum ReplayEvent {
    RegisteredBurst { delta: AppendDelta },
    Slashed { delta: UpdateDelta },
}

/// Replays recorded membership history into one peer's light view —
/// the §III group-synchronization bootstrap for late joins and
/// restarts. The peer's own registration (if present in a replayed
/// burst) is found by scanning the delta's leaves: replay is rare, so
/// the `O(burst)` scan is fine here, unlike the live fan-out path which
/// resolves offsets through a per-burst map.
fn replay_into(node: &mut crate::node::RlnRelayNode, events: &[ReplayEvent]) {
    for event in events {
        match event {
            ReplayEvent::RegisteredBurst { delta } => {
                let own = node.identity().map(|id| id.commitment()).and_then(|c| {
                    delta
                        .leaves()
                        .iter()
                        .position(|l| *l == c)
                        .map(|p| p as u64)
                });
                node.apply_append_delta(delta, own)
                    // lint:allow(panic-path, reason = "replay invariant: the log was produced by this same testbed, so registration deltas apply cleanly")
                    .expect("replayed registration burst");
            }
            ReplayEvent::Slashed { delta } => {
                // lint:allow(panic-path, reason = "replay invariant: slashing deltas in the log applied successfully when recorded")
                node.apply_update_delta(delta).expect("replayed slashing");
            }
        }
    }
}

/// Wall-clock time the harness spent in each phase — **host** time, not
/// simulated time. Diagnostic only: these feed the benchmark reports'
/// per-phase breakdown and are never part of deterministic scenario
/// reports (which must stay byte-identical across hosts and thread
/// counts).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Membership sync: canonical-tree updates, delta fan-out to peers,
    /// and restart/late-join replay.
    pub registration_sync_ns: u64,
    /// Event dispatch inside the network scheduler.
    pub dispatch_ns: u64,
    /// End-of-run drain and quiescence classification.
    pub drain_ns: u64,
}

/// Testbed configuration.
#[derive(Clone, Copy, Debug)]
pub struct TestbedConfig {
    /// Number of peers.
    pub n_peers: usize,
    /// Membership tree depth (keep ≤16 in tests; benches sweep deeper).
    pub tree_depth: usize,
    /// Epoch scheme (length `T`, delay bound `D`).
    pub epoch: EpochScheme,
    /// Bootstrap topology degree.
    pub degree: usize,
    /// Determinism seed.
    pub seed: u64,
    /// Link latency bounds in milliseconds.
    pub latency_ms: (u64, u64),
    /// GossipSub parameters.
    pub gossip: GossipsubConfig,
    /// Peer-scoring parameters.
    pub scoring: ScoringConfig,
    /// Validation cost model (device profile).
    pub cost: CostModel,
    /// Batched validation pipeline knobs; `None` keeps the serial
    /// per-message validator (byte-identical to pre-pipeline behaviour).
    pub pipeline: Option<PipelineConfig>,
    /// Worker threads for the network's sharded batch scheduler (`0` =
    /// auto-detect). Any value produces byte-identical simulations — the
    /// scheduler's determinism contract — so this is purely a wall-clock
    /// knob.
    pub threads: usize,
    /// Stake per member, wei.
    pub stake: Wei,
}

impl Default for TestbedConfig {
    fn default() -> TestbedConfig {
        TestbedConfig {
            n_peers: 20,
            tree_depth: 12,
            epoch: EpochScheme::default(),
            degree: 6,
            seed: 1,
            latency_ms: (10, 80),
            gossip: GossipsubConfig::default(),
            scoring: ScoringConfig::default(),
            cost: CostModel::default(),
            pipeline: None,
            threads: 1,
            stake: ETHER,
        }
    }
}

/// The assembled testbed. `Clone` deep-copies the entire simulation
/// (network, chain, mirror group, replay log, RNG) — the checkpoint
/// primitive behind the soak harness's restore-and-replay checks.
#[derive(Clone)]
pub struct Testbed {
    /// The peer network.
    pub net: Network<RlnRelayNode>,
    /// The simulated chain with the membership contract.
    pub chain: Chain,
    config: TestbedConfig,
    /// The **one canonical group tree** of the simulation: every
    /// registration burst is hashed here exactly once, emitting the
    /// deltas all peers' light views apply with pure lookups. Cloning the
    /// testbed (soak checkpoints) snapshots it in O(1) via copy-on-write.
    mirror: SharedGroup,
    event_cursor: usize,
    addresses: Vec<Address>,
    identities: Vec<Identity>,
    verifying_key: VerifyingKey,
    proving_key: ProvingKey,
    submitted_slashes: HashSet<[u8; 32]>,
    /// Processed events, kept so late-joining peers can replay history.
    replay_log: Vec<ReplayEvent>,
    /// Per-peer resync position: how many `replay_log` entries the peer
    /// has applied. Live peers track the log head; a crashed peer's
    /// cursor freezes, and a cold-restarted peer's rewinds to zero.
    replay_cursor: Vec<usize>,
    /// Peers restarted but not yet resynced with the group. They are
    /// excluded from event fan-out (their replay happens in order from
    /// the cursor) and from slash submission until the resync lands.
    awaiting_resync: Vec<bool>,
    rng: StdRng,
    timings: PhaseTimings,
}

impl Testbed {
    /// Builds the network: trusted setup, chain deployment, peer creation,
    /// funding, registration of every peer and initial event sync.
    ///
    /// After `build` the membership is mined and synced; callers should
    /// still run a few simulated seconds for gossip meshes to form before
    /// measuring propagation.
    pub fn build(config: TestbedConfig) -> Testbed {
        let adjacency = topology::random_regular(config.n_peers, config.degree, config.seed);
        Testbed::build_custom(config, adjacency, |_| config.cost)
    }

    /// [`Testbed::build`] with full control over the bootstrap topology
    /// and per-peer device profiles — the entry point the scenario engine
    /// uses for eclipse wiring (a victim whose bootstrap set is entirely
    /// adversarial) and heterogeneous-device mixes.
    ///
    /// `adjacency[i]` is peer `i`'s bootstrap set; `cost_of(i)` its
    /// validation cost model (device class).
    ///
    /// # Panics
    ///
    /// Panics when `adjacency.len() != config.n_peers`.
    pub fn build_custom(
        config: TestbedConfig,
        adjacency: Vec<Vec<NodeId>>,
        cost_of: impl Fn(usize) -> CostModel,
    ) -> Testbed {
        assert_eq!(
            adjacency.len(),
            config.n_peers,
            "adjacency must cover every peer"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (proving_key, verifying_key) =
            SimSnark::setup(RlnCircuit::new(config.tree_depth), &mut rng);

        let mut chain = Chain::new(ChainConfig {
            stake_amount: config.stake,
            tree_depth: config.tree_depth,
            ..ChainConfig::default()
        });

        let mut net: Network<RlnRelayNode> = Network::new(
            UniformLatency {
                min_ms: config.latency_ms.0,
                max_ms: config.latency_ms.1,
            },
            config.seed,
        );
        net.set_threads(config.threads);

        let empty_root = zero_hashes()[config.tree_depth];
        let mut addresses = Vec::with_capacity(config.n_peers);
        let mut identities = Vec::with_capacity(config.n_peers);
        for (i, peers) in adjacency.into_iter().enumerate() {
            let identity = Identity::random(&mut rng);
            let mut validator =
                RlnValidator::new(verifying_key.clone(), config.epoch, empty_root, cost_of(i));
            if let Some(pipeline) = config.pipeline {
                validator.enable_pipeline(pipeline);
            }
            let mut node = RlnRelayNode::new(
                peers,
                validator,
                proving_key.clone(),
                config.tree_depth,
                config.gossip,
                config.scoring,
            );
            node.set_identity(identity);
            net.add_node(node);

            let address = Address::from_label(&format!("peer-{i}"));
            chain.fund(address, 100 * config.stake);
            chain
                .submit(
                    address,
                    config.stake,
                    CallData::Register {
                        commitment: identity.commitment(),
                    },
                )
                // lint:allow(panic-path, reason = "testbed setup: the account was funded with exactly the required stake the line above")
                .expect("funded");
            addresses.push(address);
            identities.push(identity);
        }

        let mut testbed = Testbed {
            net,
            chain,
            config,
            // lint:allow(panic-path, reason = "testbed config is validated at construction; the depth is in the supported range")
            mirror: SharedGroup::new(config.tree_depth).expect("valid depth"),
            event_cursor: 0,
            addresses,
            identities,
            verifying_key,
            proving_key,
            submitted_slashes: HashSet::new(),
            replay_log: Vec::new(),
            replay_cursor: vec![0; config.n_peers],
            awaiting_resync: vec![false; config.n_peers],
            rng,
            timings: PhaseTimings::default(),
        };
        // mine the registrations and sync everyone
        let first_block = testbed.chain.config().block_interval;
        testbed.chain.advance_to(first_block);
        testbed.sync_chain_events();
        testbed
    }

    /// The configuration the testbed was built with.
    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    /// A peer's identity.
    pub fn identity(&self, peer: usize) -> &Identity {
        &self.identities[peer]
    }

    /// A peer's chain account.
    pub fn address(&self, peer: usize) -> Address {
        self.addresses[peer]
    }

    /// The shared verifying key.
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.verifying_key
    }

    /// Adds a **late-joining peer** while the network is running: creates
    /// a fresh identity and account, replays the full membership history
    /// into the newcomer's light tree (the §III "Group Synchronization"
    /// bootstrap), wires it to `bootstrap` existing peers, and submits its
    /// registration transaction. The registration lands with the next
    /// mined block and syncs to everyone through the normal event flow.
    ///
    /// Returns the new peer's index.
    pub fn add_peer(&mut self, bootstrap: &[usize]) -> usize {
        let identity = Identity::random(&mut self.rng);
        let empty_root = zero_hashes()[self.config.tree_depth];
        let mut validator = RlnValidator::new(
            self.verifying_key.clone(),
            self.config.epoch,
            empty_root,
            self.config.cost,
        );
        if let Some(pipeline) = self.config.pipeline {
            validator.enable_pipeline(pipeline);
        }
        let known: Vec<NodeId> = bootstrap.iter().map(|i| NodeId(*i)).collect();
        let mut node = RlnRelayNode::new(
            known,
            validator,
            self.proving_key.clone(),
            self.config.tree_depth,
            self.config.gossip,
            self.config.scoring,
        );
        node.set_identity(identity);
        // replay history so the newcomer's view matches the network's:
        // each recorded delta is applied at the same burst granularity
        // live peers saw it, reproducing their accepted-roots window
        // lint:allow(host-time, reason = "phase timing: wall-clock duration lands in phase_timings (bench diagnostics), not in the simulation")
        let sync_start = Instant::now();
        replay_into(&mut node, &self.replay_log);
        self.timings.registration_sync_ns += sync_start.elapsed().as_nanos() as u64;
        let id = self.net.add_node(node);
        let peer = id.0;
        self.replay_cursor.push(self.replay_log.len());
        self.awaiting_resync.push(false);

        let address = Address::from_label(&format!("peer-{peer}-late-{}", self.rng.gen::<u64>()));
        self.chain.fund(address, 100 * self.config.stake);
        self.chain
            .submit(
                address,
                self.config.stake,
                CallData::Register {
                    commitment: identity.commitment(),
                },
            )
            // lint:allow(panic-path, reason = "testbed setup: the account was just funded with the required stake")
            .expect("funded");
        self.addresses.push(address);
        self.identities.push(identity);
        peer
    }

    /// Number of peers currently in the network (including late joiners
    /// and crashed peers — ids are stable).
    pub fn peer_count(&self) -> usize {
        self.net.len()
    }

    /// Number of peers still running (crashed peers excluded).
    pub fn live_peer_count(&self) -> usize {
        self.net.active_len()
    }

    /// Whether a peer is still running (not crashed).
    pub fn is_live(&self, peer: usize) -> bool {
        self.net.is_active(NodeId(peer))
    }

    /// Crashes a peer: the simulated process dies without any goodbye —
    /// queued messages to it are dropped, its timers never fire again,
    /// and the mesh around it repairs itself through the gossip layer's
    /// liveness sweep. The peer's chain-side membership is untouched (a
    /// crash is not a slash), so [`Testbed::active_members`] does not
    /// change.
    ///
    /// Returns `false` when the peer had already crashed.
    pub fn crash_peer(&mut self, peer: usize) -> bool {
        self.net.remove_node(NodeId(peer))
    }

    /// Restarts a crashed peer — the recovery half of the fault model.
    ///
    /// The simulated process comes back up in the **same slot** (stable
    /// `NodeId`, continuous per-node metrics, same deterministic RNG
    /// stream — see `Network::restore_node`). Its gossip layer re-runs
    /// `on_start`: Subscribe is re-announced to every known peer and the
    /// heartbeat re-arms, so re-grafting into the mesh proceeds through
    /// the normal degree-repair path, bounded by the PRUNE backoff
    /// window when neighbours are full.
    ///
    /// `warm` selects the state model:
    ///
    /// * **warm** — the membership tree, root window and nullifier map
    ///   survived on disk; the peer only replays the contract events it
    ///   missed while down (its replay cursor froze at crash time).
    /// * **cold** — the disk was lost; tree and validator state reset to
    ///   the empty group ([`RlnRelayNode::reset_for_cold_restart`]) and
    ///   the replay cursor rewinds to zero for a full §III group
    ///   resynchronization from genesis.
    ///
    /// Either way the peer is flagged `awaiting_resync`: it is excluded
    /// from live event fan-out and slash submission until
    /// [`Testbed::attempt_resyncs`] replays its backlog — which is tried
    /// immediately, and retried each run slice while the registration
    /// contract is unreachable (counted as `resync_retries`).
    ///
    /// Returns `false` (and does nothing) when the peer was not down.
    pub fn restart_peer(&mut self, peer: usize, warm: bool) -> bool {
        if !self.net.restore_node(NodeId(peer)) {
            return false;
        }
        if !warm {
            self.net.node_mut(NodeId(peer)).reset_for_cold_restart();
            self.replay_cursor[peer] = 0;
        }
        self.awaiting_resync[peer] = true;
        self.net.metrics_mut().count("peer_restarts", 1);
        self.attempt_resyncs();
        true
    }

    /// Tries to complete the group resync of every restarted peer:
    /// replays `replay_log[cursor..]` (recorded deltas at the exact
    /// burst granularity live peers applied them) into the peer's light
    /// view, then clears the flag. While the registration contract is in
    /// outage the sync source is unreachable: each pending peer counts
    /// one `resync_retries` and stays flagged for the next slice — the
    /// bounded-retry loop the fault scenarios measure.
    ///
    /// Runs automatically inside [`Testbed::run`] after each event-sync
    /// slice; public so tests can drive recovery without advancing time.
    pub fn attempt_resyncs(&mut self) {
        // lint:allow(host-time, reason = "phase timing: wall-clock duration lands in phase_timings (bench diagnostics), not in the simulation")
        let start = Instant::now();
        for peer in 0..self.net.len() {
            if !self.awaiting_resync[peer] || !self.net.is_active(NodeId(peer)) {
                continue;
            }
            if self.chain.registration_outage_active() {
                self.net.metrics_mut().count("resync_retries", 1);
                continue;
            }
            let cursor = self.replay_cursor[peer];
            replay_into(self.net.node_mut(NodeId(peer)), &self.replay_log[cursor..]);
            self.replay_cursor[peer] = self.replay_log.len();
            self.awaiting_resync[peer] = false;
            self.net.metrics_mut().count("peer_resyncs", 1);
        }
        self.timings.registration_sync_ns += start.elapsed().as_nanos() as u64;
    }

    /// Number of restarted peers whose group resync has not completed.
    pub fn awaiting_resync_count(&self) -> usize {
        self.awaiting_resync.iter().filter(|f| **f).count()
    }

    /// A peer's current mesh degree on the shared pub/sub topic (the
    /// fault scenarios' time-to-remesh probe). Crashed peers report their
    /// frozen pre-crash mesh.
    pub fn mesh_size(&self, peer: usize) -> usize {
        self.net.node(NodeId(peer)).mesh_size()
    }

    /// Marks a peer as a censorship-eclipse adversary (see
    /// [`RlnRelayNode::set_censor`]).
    pub fn set_censor(&mut self, peer: usize, censor: bool) {
        self.net.node_mut(NodeId(peer)).set_censor(censor);
    }

    /// Marks a peer as a colluding passive observer (see
    /// [`RlnRelayNode::set_observer`]): its wire-level arrival records
    /// feed the post-run source-attribution estimators.
    pub fn set_observer(&mut self, peer: usize, observer: bool) {
        self.net.node_mut(NodeId(peer)).set_observer(observer);
    }

    /// A peer's observation records (empty unless the peer was marked an
    /// observer). Readable even after the peer crashed — a confiscated
    /// observer's tape is still evidence.
    pub fn observations(&self, peer: usize) -> &[wakurln_gossipsub::Observation] {
        self.net.node(NodeId(peer)).observations()
    }

    /// Advances the whole world (network, chain, event sync, slashing
    /// submission) by `dt_ms`, in lock-step slices of `slice_ms`.
    pub fn run(&mut self, dt_ms: u64, slice_ms: u64) {
        assert!(slice_ms > 0, "slice must be positive");
        let target = self.net.now() + dt_ms;
        while self.net.now() < target {
            let next = (self.net.now() + slice_ms).min(target);
            // lint:allow(host-time, reason = "phase timing: wall-clock duration lands in phase_timings (bench diagnostics), not in the simulation")
            let dispatch_start = Instant::now();
            self.net.run_until(next);
            self.timings.dispatch_ns += dispatch_start.elapsed().as_nanos() as u64;
            self.chain.advance_to(next / 1000);
            self.sync_chain_events();
            self.attempt_resyncs();
            self.submit_detected_slashes();
        }
    }

    /// Wall-clock phase accumulators since build (see [`PhaseTimings`]).
    pub fn phase_timings(&self) -> PhaseTimings {
        self.timings
    }

    /// Advances the world like [`Testbed::run`], then reports whether the
    /// network actually settled by `hard_stop` — the scheduler's
    /// [`QuiescenceOutcome`] instead of silently swallowing leftover
    /// events. With live gossip nodes the outcome is normally `HardStop`
    /// (heartbeat timers re-arm forever); the pending-event count still
    /// distinguishes a healthy idle mesh from a queue that is growing.
    pub fn run_to_quiescence(&mut self, hard_stop: u64, slice_ms: u64) -> QuiescenceOutcome {
        let now = self.net.now();
        if hard_stop > now {
            self.run(hard_stop - now, slice_ms);
        }
        // everything ≤ hard_stop has been processed by the sliced run;
        // this only classifies what is left in the queue
        // lint:allow(host-time, reason = "phase timing: wall-clock duration lands in phase_timings (bench diagnostics), not in the simulation")
        let drain_start = Instant::now();
        let outcome = self.net.run_to_quiescence(hard_stop);
        self.timings.drain_ns += drain_start.elapsed().as_nanos() as u64;
        outcome
    }

    /// Publishes through a peer's honest pipeline (rate-limited).
    ///
    /// # Errors
    ///
    /// Propagates [`PublishError`] (e.g. `RateLimited`).
    pub fn publish(&mut self, peer: usize, payload: &[u8]) -> Result<MessageId, PublishError> {
        self.net
            .invoke(NodeId(peer), |node, ctx| node.publish(ctx, payload))
    }

    /// Publishes bypassing the local rate limiter (the double-signaling
    /// attack).
    ///
    /// # Errors
    ///
    /// Propagates [`PublishError`].
    pub fn publish_spam(&mut self, peer: usize, payload: &[u8]) -> Result<MessageId, PublishError> {
        self.net.invoke(NodeId(peer), |node, ctx| {
            node.publish_unchecked(ctx, payload)
        })
    }

    /// Publishes with a forged epoch (`current + offset`) — the E7 replay
    /// attack. Bypasses the local rate limiter.
    ///
    /// # Errors
    ///
    /// Propagates [`PublishError`].
    pub fn publish_with_epoch_offset(
        &mut self,
        peer: usize,
        payload: &[u8],
        offset: i64,
    ) -> Result<MessageId, PublishError> {
        self.net.invoke(NodeId(peer), |node, ctx| {
            node.publish_with_epoch_offset(ctx, payload, offset)
        })
    }

    /// How many peers (other than `exclude`) have received `payload`.
    pub fn delivery_count(&self, payload: &[u8], exclude: usize) -> usize {
        (0..self.net.len())
            .filter(|i| *i != exclude)
            .filter(|i| {
                self.net
                    .node(NodeId(*i))
                    .app_deliveries()
                    .iter()
                    .any(|(data, _)| data == payload)
            })
            .count()
    }

    /// Number of members still active on the contract.
    pub fn active_members(&self) -> usize {
        self.chain.membership().active_count()
    }

    /// Whether a peer is still a provable member locally.
    pub fn is_member(&self, peer: usize) -> bool {
        self.net.node(NodeId(peer)).is_member()
    }

    /// Total double-signals detected across all validators.
    pub fn total_spam_detections(&self) -> u64 {
        (0..self.net.len())
            .map(|i| self.net.node(NodeId(i)).validator().stats().spam_detected)
            .sum()
    }

    /// Applies a burst of consecutive registration events: **one**
    /// `O(n + depth)` tree update at the canonical group, then the
    /// captured delta fans out to every live peer as `O(depth)` pure
    /// lookups. Total hashing per burst is `O(n + depth)` regardless of
    /// peer count — previously every peer re-hashed the whole burst
    /// locally (`n` peers × `O(n + depth)` hashes), the `n²` wall that
    /// capped simulations around 10k nodes.
    fn flush_registration_burst(&mut self, burst: &mut Vec<Fr>) {
        if burst.is_empty() {
            return;
        }
        let (_, delta) = self
            .mirror
            .register_batch(burst)
            // lint:allow(panic-path, reason = "the burst holds fresh commitments and the spec checked capacity, so the mirror batch registers")
            .expect("mirror batch registration");
        // resolve each peer's own position in the burst through one map
        // (an O(burst) build, O(1) per peer) rather than scanning the
        // burst per peer. Crashed peers stop syncing; restarted peers
        // still mid-resync get the delta later via their ordered replay.
        let offset_of: HashMap<[u8; 32], u64> = burst
            .iter()
            .enumerate()
            .map(|(offset, c)| (c.to_bytes_le(), offset as u64))
            .collect();
        for peer in 0..self.net.len() {
            if !self.net.is_active(NodeId(peer)) || self.awaiting_resync[peer] {
                continue;
            }
            let node = self.net.node_mut(NodeId(peer));
            let own = node
                .identity()
                .and_then(|id| offset_of.get(&id.commitment().to_bytes_le()).copied());
            node.apply_append_delta(&delta, own)
                // lint:allow(panic-path, reason = "peers mirror the group the mirror tree just accepted; the append delta applies by construction")
                .expect("peer registration sync");
        }
        burst.clear();
        self.replay_log.push(ReplayEvent::RegisteredBurst { delta });
        self.advance_live_cursors();
    }

    /// Marks every peer that just applied the newest replay event as
    /// caught up with the log head. Crashed or resync-pending peers keep
    /// their frozen cursor — the backlog they will replay on recovery.
    fn advance_live_cursors(&mut self) {
        let head = self.replay_log.len();
        for peer in 0..self.net.len() {
            if self.net.is_active(NodeId(peer)) && !self.awaiting_resync[peer] {
                self.replay_cursor[peer] = head;
            }
        }
    }

    fn sync_chain_events(&mut self) {
        // lint:allow(host-time, reason = "phase timing: wall-clock duration lands in phase_timings (bench diagnostics), not in the simulation")
        let start_time = Instant::now();
        let (events, cursor) = self.chain.events_since(self.event_cursor);
        let events: Vec<ChainEvent> = events.iter().map(|e| e.event.clone()).collect();
        self.event_cursor = cursor;
        let mut burst: Vec<Fr> = Vec::new();
        let mut expected_start: Option<u64> = None;
        for event in events {
            match event {
                ChainEvent::MemberRegistered { index, commitment } => {
                    let start = *expected_start.get_or_insert(self.mirror.next_index());
                    assert_eq!(start + burst.len() as u64, index, "event order mismatch");
                    burst.push(commitment);
                }
                ChainEvent::MemberSlashed {
                    index, commitment, ..
                } => {
                    self.flush_registration_burst(&mut burst);
                    expected_start = None;
                    // lint:allow(panic-path, reason = "slash events reference members the mirror registered earlier in the same event stream")
                    let (removed, delta) = self.mirror.remove(index).expect("mirror removal");
                    debug_assert_eq!(removed, commitment, "slash event/commitment mismatch");
                    for i in 0..self.net.len() {
                        if !self.net.is_active(NodeId(i)) || self.awaiting_resync[i] {
                            continue;
                        }
                        self.net
                            .node_mut(NodeId(i))
                            .apply_update_delta(&delta)
                            // lint:allow(panic-path, reason = "peers track the same tree the mirror just updated; the update delta applies by construction")
                            .expect("peer slashing sync");
                    }
                    self.replay_log.push(ReplayEvent::Slashed { delta });
                    self.advance_live_cursors();
                }
                ChainEvent::TreeRootUpdated { .. } | ChainEvent::MessagePosted { .. } => {}
            }
        }
        self.flush_registration_burst(&mut burst);
        self.timings.registration_sync_ns += start_time.elapsed().as_nanos() as u64;
    }

    fn submit_detected_slashes(&mut self) {
        for i in 0..self.net.len() {
            if !self.net.is_active(NodeId(i)) || self.awaiting_resync[i] {
                continue; // a dead or still-resyncing peer submits nothing
            }
            let detections = self
                .net
                .node_mut(NodeId(i))
                .validator_mut()
                .take_detections();
            for detection in detections {
                let key = detection.evidence.commitment.to_bytes_le();
                if self.submitted_slashes.insert(key) {
                    self.chain
                        .submit(
                            self.addresses[i],
                            0,
                            CallData::Slash {
                                secret: detection.evidence.revealed_secret,
                            },
                        )
                        // lint:allow(panic-path, reason = "the share pair was recovered from an actual double-signal, so the contract accepts the slash")
                        .expect("slash submission");
                    self.net.metrics_mut().count("slash_submissions", 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Testbed {
        Testbed::build(TestbedConfig {
            n_peers: 8,
            tree_depth: 10,
            degree: 4,
            ..Default::default()
        })
    }

    #[test]
    fn build_registers_everyone() {
        let tb = small();
        assert_eq!(tb.active_members(), 8);
        for i in 0..8 {
            assert!(tb.is_member(i), "peer {i} not synced");
        }
        // all local roots agree with the mirror
        let root = tb.mirror.root();
        for i in 0..8 {
            assert_eq!(tb.net.node(NodeId(i)).membership_root(), root);
        }
    }

    #[test]
    fn honest_publish_reaches_network() {
        let mut tb = small();
        tb.run(8_000, 1_000); // mesh formation
        tb.publish(0, b"hello rln").unwrap();
        tb.run(15_000, 1_000);
        assert!(tb.delivery_count(b"hello rln", 0) >= 6);
    }

    #[test]
    fn local_rate_limiter_blocks_second_message_same_epoch() {
        let mut tb = small();
        tb.run(8_000, 1_000);
        tb.publish(0, b"one").unwrap();
        let err = tb.publish(0, b"two").unwrap_err();
        assert!(matches!(err, PublishError::RateLimited { .. }));
    }

    #[test]
    fn double_signal_is_detected_and_spammer_slashed_on_chain() {
        let mut tb = small();
        tb.run(8_000, 1_000);
        let spammer = 3;
        tb.publish_spam(spammer, b"spam-a").unwrap();
        tb.publish_spam(spammer, b"spam-b").unwrap();
        // run long enough for gossip + detection + a chain block + sync
        tb.run(30_000, 1_000);
        assert!(tb.total_spam_detections() >= 1, "no detection");
        assert_eq!(tb.active_members(), 7, "spammer not slashed");
        assert!(!tb.is_member(spammer), "spammer still has membership");
        // slasher got rewarded: someone's balance grew beyond funding minus stake
        let rewarded = (0..8).any(|i| tb.chain.balance_of(tb.address(i)) > 100 * ETHER - ETHER);
        assert!(rewarded, "no slasher reward paid");
    }

    #[test]
    fn honest_peers_unaffected_by_slashing_of_spammer() {
        let mut tb = small();
        tb.run(8_000, 1_000);
        tb.publish_spam(2, b"s1").unwrap();
        tb.publish_spam(2, b"s2").unwrap();
        tb.run(30_000, 1_000);
        assert!(!tb.is_member(2));
        // an honest peer can still publish and be heard
        tb.publish(5, b"life goes on").unwrap();
        tb.run(15_000, 1_000);
        assert!(tb.delivery_count(b"life goes on", 5) >= 6);
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;

    #[test]
    fn crashed_peer_stays_member_but_stops_receiving() {
        let mut tb = Testbed::build(TestbedConfig {
            n_peers: 8,
            tree_depth: 10,
            degree: 4,
            seed: 41,
            ..Default::default()
        });
        tb.run(8_000, 1_000);
        assert!(tb.crash_peer(3));
        assert!(!tb.crash_peer(3), "second crash must be a no-op");
        assert!(!tb.is_live(3));
        assert_eq!(tb.live_peer_count(), 7);
        // a crash is not a slash: the contract still holds the stake
        assert_eq!(tb.active_members(), 8);

        tb.publish(0, b"post-crash").unwrap();
        tb.run(40_000, 1_000);
        // survivors converge (mesh repaired around the hole)...
        assert!(tb.delivery_count(b"post-crash", 0) >= 6);
        // ...and the dead peer took nothing
        let got = tb
            .net
            .node(NodeId(3))
            .app_deliveries()
            .iter()
            .any(|(m, _)| m == b"post-crash");
        assert!(!got, "crashed peer received traffic");
    }

    #[test]
    fn network_survives_crashes_and_still_slashes_spammers() {
        let mut tb = Testbed::build(TestbedConfig {
            n_peers: 10,
            tree_depth: 10,
            degree: 4,
            seed: 42,
            ..Default::default()
        });
        tb.run(8_000, 1_000);
        tb.crash_peer(1);
        tb.crash_peer(8);
        tb.run(5_000, 1_000);
        tb.publish_spam(4, b"cs-a").unwrap();
        tb.publish_spam(4, b"cs-b").unwrap();
        tb.run(40_000, 1_000);
        assert!(!tb.is_member(4), "spammer survived network churn");
        assert_eq!(tb.active_members(), 9);
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;

    fn testbed(seed: u64) -> Testbed {
        Testbed::build(TestbedConfig {
            n_peers: 8,
            tree_depth: 10,
            degree: 4,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn restart_of_a_running_peer_is_a_no_op() {
        let mut tb = testbed(51);
        tb.run(5_000, 1_000);
        assert!(!tb.restart_peer(2, true));
        assert_eq!(tb.awaiting_resync_count(), 0);
        assert_eq!(tb.net.metrics().counter("peer_restarts"), 0);
    }

    #[test]
    fn warm_restart_replays_only_the_missed_events() {
        let mut tb = testbed(52);
        tb.run(8_000, 1_000);
        assert!(tb.crash_peer(3));
        // history moves on while 3 is down: a spammer gets slashed and a
        // late joiner registers — both land in the replay log
        tb.publish_spam(5, b"down-a").unwrap();
        tb.publish_spam(5, b"down-b").unwrap();
        tb.run(30_000, 1_000);
        assert!(!tb.is_member(5), "spammer not slashed while 3 was down");
        let newbie = tb.add_peer(&[0, 1, 2]);
        tb.run(10_000, 1_000);

        assert!(tb.restart_peer(3, true));
        assert!(!tb.restart_peer(3, true), "double restart must be no-op");
        // no contract outage: the resync lands immediately
        assert_eq!(tb.awaiting_resync_count(), 0);
        assert_eq!(
            tb.net.node(NodeId(3)).membership_root(),
            tb.net.node(NodeId(0)).membership_root(),
            "restarted peer's root disagrees after resync"
        );
        assert!(tb.is_member(3), "warm restart lost own membership");

        // the mesh re-forms and the peer hears new traffic
        tb.run(20_000, 1_000);
        tb.publish(newbie, b"after the storm").unwrap();
        tb.run(20_000, 1_000);
        let got = tb
            .net
            .node(NodeId(3))
            .app_deliveries()
            .iter()
            .any(|(m, _)| m == b"after the storm");
        assert!(got, "restarted peer never rejoined the mesh");
        assert_eq!(tb.net.metrics().counter("peer_restarts"), 1);
        assert_eq!(tb.net.metrics().counter("peer_resyncs"), 1);
    }

    #[test]
    fn cold_restart_rebuilds_membership_from_genesis() {
        let mut tb = testbed(53);
        tb.run(8_000, 1_000);
        assert!(tb.crash_peer(4));
        tb.run(5_000, 1_000);
        assert!(tb.restart_peer(4, false));
        assert_eq!(tb.awaiting_resync_count(), 0);
        // the wiped tree replayed the full history, including its own
        // registration — membership and root both restored
        assert!(tb.is_member(4), "cold restart did not re-register own leaf");
        assert_eq!(
            tb.net.node(NodeId(4)).membership_root(),
            tb.net.node(NodeId(0)).membership_root()
        );
        // nullifier map was wiped with the disk
        assert_eq!(tb.net.node(NodeId(4)).validator().nullifier_map_bytes(), 0);
        // and the peer can publish again (rate-limiter memory is durable,
        // so wait out the epoch it may have published in)
        tb.run(15_000, 1_000);
        tb.publish(4, b"back from the dead").unwrap();
        tb.run(20_000, 1_000);
        assert!(tb.delivery_count(b"back from the dead", 4) >= 6);
    }

    #[test]
    fn resync_retries_under_contract_outage_then_completes() {
        let mut tb = testbed(54);
        tb.run(8_000, 1_000);
        assert!(tb.crash_peer(2));
        // registration contract goes dark until t = 20 s
        tb.chain.set_registration_outage(20);
        assert!(tb.restart_peer(2, false));
        // the immediate attempt and each subsequent slice count retries
        assert_eq!(tb.awaiting_resync_count(), 1);
        tb.run(5_000, 1_000);
        assert_eq!(tb.awaiting_resync_count(), 1, "resync landed mid-outage");
        let retries = tb.net.metrics().counter("resync_retries");
        assert!(retries >= 2, "expected repeated retries, saw {retries}");
        // outage lifts; the next slice completes the resync
        tb.run(10_000, 1_000);
        assert_eq!(tb.awaiting_resync_count(), 0);
        assert!(tb.is_member(2));
        assert_eq!(
            tb.net.node(NodeId(2)).membership_root(),
            tb.net.node(NodeId(0)).membership_root()
        );
    }

    #[test]
    fn peer_mid_resync_is_skipped_by_live_fanout_without_losing_events() {
        let mut tb = testbed(55);
        tb.run(8_000, 1_000);
        assert!(tb.crash_peer(6));
        tb.chain.set_registration_outage(40);
        assert!(tb.restart_peer(6, true));
        // while 6 is pending, new history arrives — a spammer is slashed
        // (slashing is unaffected by the *registration* outage). The
        // event must reach 6 via its ordered replay, not the live fan-out
        tb.publish_spam(1, b"mid-a").unwrap();
        tb.publish_spam(1, b"mid-b").unwrap();
        tb.run(20_000, 1_000);
        assert!(!tb.is_member(1), "spammer not slashed mid-outage");
        assert_eq!(tb.awaiting_resync_count(), 1);
        tb.run(20_000, 1_000); // outage lifts at t = 40 s
        assert_eq!(tb.awaiting_resync_count(), 0);
        assert_eq!(
            tb.net.node(NodeId(6)).membership_root(),
            tb.net.node(NodeId(0)).membership_root(),
            "replayed backlog diverged from live fan-out"
        );
    }
}

#[cfg(test)]
mod late_join_tests {
    use super::*;

    #[test]
    fn late_joiner_syncs_and_participates() {
        let mut tb = Testbed::build(TestbedConfig {
            n_peers: 6,
            tree_depth: 10,
            degree: 3,
            seed: 31,
            ..Default::default()
        });
        tb.run(8_000, 1_000);

        // a spammer is slashed before the newcomer arrives — history the
        // newcomer must replay correctly
        tb.publish_spam(2, b"pre-a").unwrap();
        tb.publish_spam(2, b"pre-b").unwrap();
        tb.run(30_000, 1_000);
        assert_eq!(tb.active_members(), 5);

        let newbie = tb.add_peer(&[0, 1, 3]);
        assert_eq!(newbie, 6);
        // registration mines, syncs, meshes form
        tb.run(20_000, 1_000);
        assert!(tb.is_member(newbie), "late joiner not registered");
        assert_eq!(tb.active_members(), 6);
        // its root agrees with an old peer's
        assert_eq!(
            tb.net.node(NodeId(newbie)).membership_root(),
            tb.net.node(NodeId(0)).membership_root()
        );

        // it can publish and be heard...
        tb.publish(newbie, b"hello from the late joiner").unwrap();
        tb.run(15_000, 1_000);
        assert!(tb.delivery_count(b"hello from the late joiner", newbie) >= 4);

        // ...and it receives others' messages
        tb.run(11_000, 1_000); // next epoch for peer 0
        tb.publish(0, b"welcome aboard").unwrap();
        tb.run(15_000, 1_000);
        let got = tb
            .net
            .node(NodeId(newbie))
            .app_deliveries()
            .iter()
            .any(|(m, _)| m == b"welcome aboard");
        assert!(got, "late joiner did not receive traffic");
    }

    #[test]
    fn late_joining_spammer_is_slashed_too() {
        let mut tb = Testbed::build(TestbedConfig {
            n_peers: 6,
            tree_depth: 10,
            degree: 3,
            seed: 32,
            ..Default::default()
        });
        tb.run(8_000, 1_000);
        let newbie = tb.add_peer(&[0, 1, 2]);
        tb.run(20_000, 1_000);
        assert!(tb.is_member(newbie));

        tb.publish_spam(newbie, b"late-spam-1").unwrap();
        tb.publish_spam(newbie, b"late-spam-2").unwrap();
        tb.run(40_000, 1_000);
        assert!(!tb.is_member(newbie), "late-joining spammer survived");
        assert_eq!(tb.active_members(), 6);
    }
}
