//! Epochs as external nullifiers (re-exported from the model crate).
//!
//! The epoch arithmetic — `epoch_at_ms`, the `Thr = ⌈D/T⌉` window and
//! the external-nullifier encoding — is part of the model-checked
//! protocol core and lives in [`wakurln_model::epoch`]; this module
//! re-exports it so existing `waku_rln_relay::epoch` paths keep
//! working.

pub use wakurln_model::epoch::*;
