//! Chain primitives: addresses, transactions, receipts, events.

use serde::{Deserialize, Serialize};
use std::fmt;
use wakurln_crypto::field::Fr;
use wakurln_crypto::sha256::{to_hex, Sha256};

/// A 20-byte account address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// Deterministically derives an address from a label (test/simulation
    /// convenience — real accounts come from ECDSA keys, which the
    /// simulation does not need).
    pub fn from_label(label: &str) -> Address {
        let digest = Sha256::digest(label.as_bytes());
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest[..20]);
        Address(out)
    }

    /// The all-zero "burn" address: value sent here is destroyed, which is
    /// how the contract burns a portion of a slashed member's stake.
    pub const BURN: Address = Address([0u8; 20]);
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", to_hex(&self.0))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", to_hex(&self.0))
    }
}

/// Amount of simulated ether, in wei.
pub type Wei = u128;

/// One ether in wei.
pub const ETHER: Wei = 1_000_000_000_000_000_000;

/// Contract entry points callable by transactions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CallData {
    /// `MembershipContract::register(commitment)` — the paper's design:
    /// the contract stores only the ordered list of commitments.
    Register {
        /// The identity commitment `pk = H(sk)`.
        commitment: Fr,
    },
    /// `MembershipContract::slash(secret)` — delete a member by revealing
    /// their secret key; part of the stake is burnt, part rewarded.
    Slash {
        /// The revealed secret key.
        secret: Fr,
    },
    /// `OnChainTreeContract::register(commitment)` — the *baseline* design
    /// (original RLN proposal): the contract maintains the Merkle tree in
    /// storage, paying O(depth) hashing and storage per update.
    TreeRegister {
        /// The identity commitment.
        commitment: Fr,
    },
    /// `OnChainTreeContract::remove(index, secret)` — baseline deletion.
    TreeRemove {
        /// Leaf index to clear.
        index: u64,
        /// The revealed secret key.
        secret: Fr,
    },
    /// `SignalBoardContract::post(payload)` — the *baseline* messaging
    /// design where signals live on-chain (compared in E5 against p2p
    /// gossip propagation).
    Post {
        /// Raw message payload.
        payload: Vec<u8>,
    },
}

/// A transaction waiting in the pool or included in a block.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Sender account.
    pub from: Address,
    /// Ether attached (stake for registrations).
    pub value: Wei,
    /// The contract call.
    pub call: CallData,
    /// Pool-assigned sequence number (set by the chain on submission).
    pub nonce: u64,
}

/// Execution status of a mined transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxStatus {
    /// Executed successfully.
    Success,
    /// Reverted with a reason; attached value was refunded.
    Reverted(String),
}

/// A mined transaction's receipt.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Receipt {
    /// The transaction's pool nonce.
    pub nonce: u64,
    /// Block that included the transaction.
    pub block_number: u64,
    /// Gas consumed by execution.
    pub gas_used: u64,
    /// Success or revert.
    pub status: TxStatus,
}

/// Events emitted by the contracts into the chain's log.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ChainEvent {
    /// A member registered on the membership (registry) contract.
    MemberRegistered {
        /// Position in the ordered commitment list == Merkle leaf index.
        index: u64,
        /// The registered commitment.
        commitment: Fr,
    },
    /// A member was slashed on the membership contract.
    MemberSlashed {
        /// The removed member's index.
        index: u64,
        /// The removed commitment.
        commitment: Fr,
        /// Who submitted the slashing transaction (receives the reward).
        slasher: Address,
        /// Wei burnt.
        burned: Wei,
        /// Wei rewarded to the slasher.
        rewarded: Wei,
    },
    /// The baseline on-chain tree's root changed.
    TreeRootUpdated {
        /// New root value.
        root: Fr,
    },
    /// A message was posted to the on-chain signal board (baseline).
    MessagePosted {
        /// Sequential message id.
        id: u64,
        /// Poster.
        sender: Address,
        /// Payload bytes.
        payload: Vec<u8>,
    },
}

/// A log entry: an event plus where it happened.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoggedEvent {
    /// Block number of the enclosing block.
    pub block_number: u64,
    /// Block timestamp (simulated seconds).
    pub timestamp: u64,
    /// The event payload.
    pub event: ChainEvent,
}

/// A mined block.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Height.
    pub number: u64,
    /// Simulated UNIX timestamp.
    pub timestamp: u64,
    /// Receipts of the included transactions, in execution order.
    pub receipts: Vec<Receipt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_from_label_is_deterministic_and_distinct() {
        assert_eq!(Address::from_label("alice"), Address::from_label("alice"));
        assert_ne!(Address::from_label("alice"), Address::from_label("bob"));
    }

    #[test]
    fn address_display_is_hex() {
        let s = format!("{}", Address::BURN);
        assert_eq!(s, format!("0x{}", "00".repeat(20)));
    }
}
