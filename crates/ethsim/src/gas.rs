//! EVM-style gas schedule and metering.
//!
//! The paper's headline contract optimization (§III) is about *gas*: keeping
//! the Merkle tree off-chain makes registration and deletion O(1) storage
//! operations instead of O(log n) storage writes *plus* O(log n) on-chain
//! Poseidon evaluations. The constants below follow the post-Berlin
//! Ethereum schedule closely enough to reproduce the relative costs
//! (experiment E4); `POSEIDON_HASH` reflects measured costs of Solidity
//! Poseidon implementations (tens of thousands of gas per permutation).

/// Flat cost of any transaction.
pub const TX_BASE: u64 = 21_000;
/// Writing a storage slot from zero to non-zero.
pub const SSTORE_SET: u64 = 20_000;
/// Updating an already non-zero storage slot.
pub const SSTORE_UPDATE: u64 = 5_000;
/// Reading a (cold) storage slot.
pub const SLOAD: u64 = 2_100;
/// Base cost of emitting a log/event.
pub const LOG_BASE: u64 = 375;
/// Additional cost per log topic.
pub const LOG_TOPIC: u64 = 375;
/// Cost per byte of log data.
pub const LOG_DATA_BYTE: u64 = 8;
/// Cost per non-zero byte of transaction calldata.
pub const CALLDATA_BYTE: u64 = 16;
/// One Poseidon permutation evaluated *inside the EVM* (Solidity
/// implementations of the 3-ary Poseidon round function; see e.g.
/// circomlib-compatible contracts, which land in the 20k–60k range).
pub const POSEIDON_HASH: u64 = 45_000;

/// An accumulating gas meter for one transaction execution.
///
/// # Examples
///
/// ```
/// use wakurln_ethsim::gas::{GasMeter, TX_BASE, SSTORE_SET};
///
/// let mut meter = GasMeter::new();
/// meter.charge(TX_BASE);
/// meter.sstore_set();
/// assert_eq!(meter.used(), TX_BASE + SSTORE_SET);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GasMeter {
    used: u64,
}

impl GasMeter {
    /// Fresh meter at zero.
    pub fn new() -> GasMeter {
        GasMeter::default()
    }

    /// Adds an arbitrary amount.
    pub fn charge(&mut self, amount: u64) {
        self.used = self.used.saturating_add(amount);
    }

    /// Charges a zero→non-zero storage write.
    pub fn sstore_set(&mut self) {
        self.charge(SSTORE_SET);
    }

    /// Charges a non-zero storage update.
    pub fn sstore_update(&mut self) {
        self.charge(SSTORE_UPDATE);
    }

    /// Charges a storage read.
    pub fn sload(&mut self) {
        self.charge(SLOAD);
    }

    /// Charges an event emission with `topics` topics and `data_len` bytes.
    pub fn log(&mut self, topics: u64, data_len: usize) {
        self.charge(LOG_BASE + topics * LOG_TOPIC + data_len as u64 * LOG_DATA_BYTE);
    }

    /// Charges one in-EVM Poseidon permutation.
    pub fn poseidon(&mut self) {
        self.charge(POSEIDON_HASH);
    }

    /// Charges calldata for `len` bytes (all counted as non-zero: an upper
    /// bound that is uniform across the compared designs).
    pub fn calldata(&mut self, len: usize) {
        self.charge(len as u64 * CALLDATA_BYTE);
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates() {
        let mut m = GasMeter::new();
        m.charge(TX_BASE);
        m.sload();
        m.sstore_update();
        m.log(2, 10);
        assert_eq!(
            m.used(),
            TX_BASE + SLOAD + SSTORE_UPDATE + LOG_BASE + 2 * LOG_TOPIC + 80
        );
    }

    #[test]
    fn saturating_never_overflows() {
        let mut m = GasMeter::new();
        m.charge(u64::MAX);
        m.charge(u64::MAX);
        assert_eq!(m.used(), u64::MAX);
    }

    #[test]
    fn calldata_linear() {
        let mut m = GasMeter::new();
        m.calldata(100);
        assert_eq!(m.used(), 1600);
    }
}
