//! # wakurln-ethsim
//!
//! A simulated Ethereum-like blockchain for the WAKU-RLN-RELAY
//! reproduction. The paper uses the real chain for exactly two things —
//! a **staked membership registry with slashing** and a **gas-cost
//! yardstick** — so this crate models block production, balances, an
//! EVM-style gas schedule, contract execution and an event log, and
//! nothing else (see DESIGN.md §2).
//!
//! * [`gas`] — gas schedule and metering,
//! * [`types`] — addresses, transactions, receipts, events,
//! * [`contracts`] — the membership registry (paper design), the on-chain
//!   tree (original-RLN baseline) and the on-chain message board
//!   (propagation baseline),
//! * [`chain`] — block production, execution, event subscriptions.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chain;
pub mod contracts;
pub mod gas;
pub mod types;

pub use chain::{Chain, ChainConfig, ChainError};
pub use contracts::{MembershipContract, OnChainTreeContract, SignalBoardContract};
