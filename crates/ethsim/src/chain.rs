//! The simulated blockchain: block production, transaction execution,
//! balances and the event log peers subscribe to.

use crate::contracts::{BalanceEnv, MembershipContract, OnChainTreeContract, SignalBoardContract};
use crate::gas::{self, GasMeter};
use crate::types::{Address, Block, CallData, LoggedEvent, Receipt, Transaction, TxStatus, Wei};
use std::collections::HashMap;

/// Chain configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChainConfig {
    /// Seconds between blocks (Ethereum mainnet ≈ 12 s on the paper's
    /// timeline — this drives the E5 on-chain-messaging latency).
    pub block_interval: u64,
    /// Stake required by the membership contract, in wei.
    pub stake_amount: Wei,
    /// Percentage of a slashed stake that is burnt (rest rewards the
    /// slasher).
    pub burn_percent: u8,
    /// Depth of the baseline on-chain tree contract.
    pub tree_depth: usize,
}

impl Default for ChainConfig {
    fn default() -> ChainConfig {
        ChainConfig {
            block_interval: 12,
            stake_amount: crate::types::ETHER,
            burn_percent: 50,
            tree_depth: 20,
        }
    }
}

/// Errors from chain interactions (distinct from in-EVM reverts, which are
/// reported through receipts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The sender's balance cannot cover the attached value.
    InsufficientBalance {
        /// Sender account.
        from: Address,
        /// Balance the sender holds.
        balance: Wei,
        /// Value the transaction tried to attach.
        needed: Wei,
    },
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::InsufficientBalance {
                from,
                balance,
                needed,
            } => write!(f, "{from} holds {balance} wei but tried to attach {needed}"),
        }
    }
}

impl std::error::Error for ChainError {}

#[derive(Clone)]
struct Balances {
    accounts: HashMap<Address, Wei>,
}

impl BalanceEnv for Balances {
    fn credit(&mut self, to: Address, amount: Wei) {
        *self.accounts.entry(to).or_default() += amount;
    }
}

/// The simulated chain.
///
/// Time is externally driven (the discrete-event network simulator owns
/// the clock): callers move time forward with [`Chain::advance_to`], which
/// mines pending transactions at each block boundary.
///
/// # Examples
///
/// ```
/// use wakurln_ethsim::{Chain, ChainConfig, types::{Address, CallData}};
/// use wakurln_crypto::{field::Fr, poseidon};
///
/// let mut chain = Chain::new(ChainConfig::default());
/// let alice = Address::from_label("alice");
/// chain.fund(alice, 10 * wakurln_ethsim::types::ETHER);
///
/// let sk = Fr::from_u64(7);
/// chain.submit(alice, chain.config().stake_amount, CallData::Register {
///     commitment: poseidon::hash1(sk),
/// }).unwrap();
///
/// chain.advance_to(12); // one block interval later…
/// assert_eq!(chain.membership().active_count(), 1);
/// ```
#[derive(Clone)]
pub struct Chain {
    config: ChainConfig,
    time: u64,
    next_block_time: u64,
    next_nonce: u64,
    pending: Vec<Transaction>,
    blocks: Vec<Block>,
    balances: Balances,
    membership: MembershipContract,
    tree_baseline: OnChainTreeContract,
    board: SignalBoardContract,
    events: Vec<LoggedEvent>,
    /// Fault injection: until this timestamp (seconds), `Register` calls
    /// revert at mining time — modelling a registration-service outage
    /// (RPC endpoint down, contract paused). 0 = no outage.
    registration_closed_until: u64,
}

impl Chain {
    /// Creates a chain at time 0 with the three contracts deployed.
    ///
    /// # Panics
    ///
    /// Panics if `config.tree_depth` is invalid or `block_interval` is 0.
    pub fn new(config: ChainConfig) -> Chain {
        assert!(config.block_interval > 0, "block interval must be positive");
        Chain {
            config,
            time: 0,
            next_block_time: config.block_interval,
            next_nonce: 0,
            pending: Vec::new(),
            blocks: Vec::new(),
            balances: Balances {
                accounts: HashMap::new(),
            },
            membership: MembershipContract::new(config.stake_amount, config.burn_percent),
            tree_baseline: OnChainTreeContract::new(config.stake_amount, config.tree_depth)
                // lint:allow(panic-path, reason = "ChainConfig depth is validated when the config is built; the contract mirrors it")
                .expect("valid tree depth"),
            board: SignalBoardContract::new(),
            events: Vec::new(),
            registration_closed_until: 0,
        }
    }

    /// Opens a registration-contract outage window: every `Register`
    /// transaction mined strictly before `until` (seconds) reverts (and
    /// refunds its escrowed stake through the normal revert path).
    /// Resync/recovery layers observe the outage through
    /// [`Chain::registration_outage_active`] and retry after it lifts.
    pub fn set_registration_outage(&mut self, until: u64) {
        self.registration_closed_until = until;
    }

    /// Whether the registration contract is currently inside an injected
    /// outage window.
    pub fn registration_outage_active(&self) -> bool {
        self.time < self.registration_closed_until
    }

    /// The configuration this chain runs with.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Number of mined blocks.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Credits an account (genesis funding).
    pub fn fund(&mut self, account: Address, amount: Wei) {
        self.balances.credit(account, amount);
    }

    /// An account's balance.
    pub fn balance_of(&self, account: Address) -> Wei {
        self.balances.accounts.get(&account).copied().unwrap_or(0)
    }

    /// Read access to the membership registry contract.
    pub fn membership(&self) -> &MembershipContract {
        &self.membership
    }

    /// Read access to the baseline on-chain tree contract.
    pub fn tree_baseline(&self) -> &OnChainTreeContract {
        &self.tree_baseline
    }

    /// Read access to the on-chain messaging board.
    pub fn board(&self) -> &SignalBoardContract {
        &self.board
    }

    /// Submits a transaction to the pool; it executes when the next block
    /// is mined. Returns the pool nonce for matching the receipt.
    ///
    /// # Errors
    ///
    /// [`ChainError::InsufficientBalance`] if `value` exceeds the sender's
    /// balance (checked at submission; the value is escrowed).
    pub fn submit(&mut self, from: Address, value: Wei, call: CallData) -> Result<u64, ChainError> {
        let balance = self.balance_of(from);
        if balance < value {
            return Err(ChainError::InsufficientBalance {
                from,
                balance,
                needed: value,
            });
        }
        *self.balances.accounts.entry(from).or_default() -= value;
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.pending.push(Transaction {
            from,
            value,
            call,
            nonce,
        });
        Ok(nonce)
    }

    /// Advances simulated time, mining a block at every block-interval
    /// boundary crossed. Returns receipts of all transactions mined.
    pub fn advance_to(&mut self, time: u64) -> Vec<Receipt> {
        let mut receipts = Vec::new();
        while self.next_block_time <= time {
            let block_time = self.next_block_time;
            receipts.extend(self.mine_block(block_time));
            self.next_block_time += self.config.block_interval;
        }
        self.time = self.time.max(time);
        receipts
    }

    /// Timestamp at which the next block will be mined.
    pub fn next_block_time(&self) -> u64 {
        self.next_block_time
    }

    /// Events with log index `>= cursor`; returns the new cursor. This is
    /// the subscription mechanism peers use for group synchronization
    /// (§III: "Upon member update, the membership contract emits update
    /// events by listening to which peers can update their local trees").
    pub fn events_since(&self, cursor: usize) -> (&[LoggedEvent], usize) {
        (
            &self.events[cursor.min(self.events.len())..],
            self.events.len(),
        )
    }

    /// All receipts ever produced (flattened).
    pub fn receipts(&self) -> impl Iterator<Item = &Receipt> {
        self.blocks.iter().flat_map(|b| b.receipts.iter())
    }

    fn mine_block(&mut self, timestamp: u64) -> Vec<Receipt> {
        let number = self.blocks.len() as u64 + 1;
        let txs = std::mem::take(&mut self.pending);
        let mut receipts = Vec::with_capacity(txs.len());
        for tx in txs {
            let mut meter = GasMeter::new();
            meter.charge(gas::TX_BASE);
            let mut events = Vec::new();
            let outcome: Result<(), String> = match tx.call.clone() {
                CallData::Register { .. } if timestamp < self.registration_closed_until => {
                    Err("registration contract outage".to_string())
                }
                CallData::Register { commitment } => self
                    .membership
                    .register(tx.from, tx.value, commitment, &mut meter, &mut events)
                    .map(|_| ()),
                CallData::Slash { secret } => self
                    .membership
                    .slash(tx.from, secret, &mut meter, &mut events, &mut self.balances)
                    .map(|_| ()),
                CallData::TreeRegister { commitment } => self
                    .tree_baseline
                    .register(tx.from, tx.value, commitment, &mut meter, &mut events)
                    .map(|_| ()),
                CallData::TreeRemove { index, secret } => {
                    self.tree_baseline
                        .remove(tx.from, index, secret, &mut meter, &mut events)
                }
                CallData::Post { payload } => self
                    .board
                    .post(tx.from, payload, &mut meter, &mut events)
                    .map(|_| ()),
            };
            let status = match outcome {
                Ok(()) => {
                    for event in events {
                        self.events.push(LoggedEvent {
                            block_number: number,
                            timestamp,
                            event,
                        });
                    }
                    TxStatus::Success
                }
                Err(reason) => {
                    // refund the escrowed value on revert
                    self.balances.credit(tx.from, tx.value);
                    TxStatus::Reverted(reason)
                }
            };
            receipts.push(Receipt {
                nonce: tx.nonce,
                block_number: number,
                gas_used: meter.used(),
                status,
            });
        }
        self.blocks.push(Block {
            number,
            timestamp,
            receipts: receipts.clone(),
        });
        receipts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ChainEvent, ETHER};
    use wakurln_crypto::field::Fr;
    use wakurln_crypto::poseidon;

    fn funded_chain() -> (Chain, Address) {
        let mut chain = Chain::new(ChainConfig::default());
        let user = Address::from_label("user");
        chain.fund(user, 100 * ETHER);
        (chain, user)
    }

    #[test]
    fn registration_flows_through_a_block() {
        let (mut chain, user) = funded_chain();
        let sk = Fr::from_u64(5);
        chain
            .submit(
                user,
                ETHER,
                CallData::Register {
                    commitment: poseidon::hash1(sk),
                },
            )
            .unwrap();
        // not yet mined
        assert_eq!(chain.membership().active_count(), 0);
        let receipts = chain.advance_to(12);
        assert_eq!(receipts.len(), 1);
        assert_eq!(receipts[0].status, TxStatus::Success);
        assert_eq!(chain.membership().active_count(), 1);
        let (events, _) = chain.events_since(0);
        assert!(matches!(
            events[0].event,
            ChainEvent::MemberRegistered { index: 0, .. }
        ));
    }

    #[test]
    fn value_escrow_and_revert_refund() {
        let (mut chain, user) = funded_chain();
        let before = chain.balance_of(user);
        // wrong stake → revert → refund
        chain
            .submit(
                user,
                ETHER / 2,
                CallData::Register {
                    commitment: Fr::from_u64(1),
                },
            )
            .unwrap();
        assert_eq!(chain.balance_of(user), before - ETHER / 2);
        let receipts = chain.advance_to(12);
        assert!(matches!(receipts[0].status, TxStatus::Reverted(_)));
        assert_eq!(chain.balance_of(user), before);
    }

    #[test]
    fn insufficient_balance_rejected_at_submission() {
        let mut chain = Chain::new(ChainConfig::default());
        let poor = Address::from_label("poor");
        let err = chain
            .submit(
                poor,
                ETHER,
                CallData::Register {
                    commitment: Fr::from_u64(1),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::InsufficientBalance { .. }));
    }

    #[test]
    fn slashing_moves_stake() {
        let (mut chain, member) = funded_chain();
        let slasher = Address::from_label("slasher");
        chain.fund(slasher, ETHER);
        let sk = Fr::from_u64(42);
        chain
            .submit(
                member,
                ETHER,
                CallData::Register {
                    commitment: poseidon::hash1(sk),
                },
            )
            .unwrap();
        chain.advance_to(12);
        let slasher_before = chain.balance_of(slasher);
        chain
            .submit(slasher, 0, CallData::Slash { secret: sk })
            .unwrap();
        chain.advance_to(24);
        assert_eq!(chain.membership().active_count(), 0);
        assert_eq!(chain.balance_of(slasher), slasher_before + ETHER / 2);
        assert_eq!(chain.balance_of(Address::BURN), ETHER / 2);
    }

    #[test]
    fn registration_outage_reverts_and_refunds_until_it_lifts() {
        let (mut chain, user) = funded_chain();
        chain.set_registration_outage(30);
        assert!(chain.registration_outage_active());
        let before = chain.balance_of(user);
        chain
            .submit(
                user,
                ETHER,
                CallData::Register {
                    commitment: poseidon::hash1(Fr::from_u64(9)),
                },
            )
            .unwrap();
        // block at t=12: inside the outage — reverted, stake refunded
        let receipts = chain.advance_to(12);
        assert!(matches!(receipts[0].status, TxStatus::Reverted(_)));
        assert_eq!(chain.membership().active_count(), 0);
        assert_eq!(chain.balance_of(user), before);
        // retry after the window lifts (block at t=36 ≥ 30): succeeds
        chain.advance_to(30);
        assert!(!chain.registration_outage_active());
        chain
            .submit(
                user,
                ETHER,
                CallData::Register {
                    commitment: poseidon::hash1(Fr::from_u64(9)),
                },
            )
            .unwrap();
        let receipts = chain.advance_to(36);
        assert_eq!(receipts[0].status, TxStatus::Success);
        assert_eq!(chain.membership().active_count(), 1);
        // slashing is unaffected by a *registration* outage
        chain.set_registration_outage(10_000);
        let sk = Fr::from_u64(9);
        chain
            .submit(user, 0, CallData::Slash { secret: sk })
            .unwrap();
        let receipts = chain.advance_to(48);
        assert_eq!(receipts[0].status, TxStatus::Success);
    }

    #[test]
    fn blocks_are_mined_on_interval_boundaries() {
        let (mut chain, _) = funded_chain();
        chain.advance_to(11);
        assert_eq!(chain.height(), 0);
        chain.advance_to(12);
        assert_eq!(chain.height(), 1);
        chain.advance_to(100);
        assert_eq!(chain.height(), 8); // blocks at 12,24,…,96
        assert_eq!(chain.next_block_time(), 108);
    }

    #[test]
    fn event_cursor_pagination() {
        let (mut chain, user) = funded_chain();
        for i in 0..3u64 {
            chain
                .submit(
                    user,
                    ETHER,
                    CallData::Register {
                        commitment: Fr::from_u64(100 + i),
                    },
                )
                .unwrap();
        }
        chain.advance_to(12);
        let (batch1, cursor) = chain.events_since(0);
        assert_eq!(batch1.len(), 3);
        let (batch2, _) = chain.events_since(cursor);
        assert!(batch2.is_empty());
    }

    #[test]
    fn gas_comparison_registry_vs_tree() {
        let (mut chain, user) = funded_chain();
        chain
            .submit(
                user,
                ETHER,
                CallData::Register {
                    commitment: Fr::from_u64(1),
                },
            )
            .unwrap();
        chain
            .submit(
                user,
                ETHER,
                CallData::TreeRegister {
                    commitment: Fr::from_u64(1),
                },
            )
            .unwrap();
        let receipts = chain.advance_to(12);
        let registry_gas = receipts[0].gas_used;
        let tree_gas = receipts[1].gas_used;
        assert!(
            tree_gas as f64 / registry_gas as f64 >= 10.0,
            "registry {registry_gas} vs tree {tree_gas}"
        );
    }

    #[test]
    fn board_messages_visible_only_after_mining() {
        let (mut chain, user) = funded_chain();
        chain
            .submit(
                user,
                0,
                CallData::Post {
                    payload: b"hello".to_vec(),
                },
            )
            .unwrap();
        assert_eq!(chain.board().message_count(), 0);
        chain.advance_to(12);
        assert_eq!(chain.board().message_count(), 1);
        let (events, _) = chain.events_since(0);
        assert!(matches!(
            events[0].event,
            ChainEvent::MessagePosted { id: 0, .. }
        ));
    }
}
