//! The three contracts of the evaluation:
//!
//! * [`MembershipContract`] — the paper's design (§III): an ordered list
//!   of commitments plus staking and slashing; O(1) gas per operation.
//! * [`OnChainTreeContract`] — the original RLN proposal's design: the
//!   Merkle tree maintained in contract storage; O(depth) gas per update.
//! * [`SignalBoardContract`] — the "signals on chain" messaging baseline
//!   whose propagation latency E5 compares against gossip.

use crate::gas::GasMeter;
use crate::types::{Address, ChainEvent, Wei};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::{IncrementalMerkleTree, MerkleError};
use wakurln_crypto::poseidon;

/// Balance operations the chain exposes to executing contracts.
pub trait BalanceEnv {
    /// Moves `amount` wei from the contract's escrow to `to`.
    fn credit(&mut self, to: Address, amount: Wei);
}

/// One registered member slot on the registry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemberSlot {
    /// The registered commitment.
    pub commitment: Fr,
    /// Staked wei held in escrow.
    pub stake: Wei,
    /// `false` after slashing.
    pub active: bool,
}

/// The membership registry contract (the paper's §III design).
///
/// Stores **only the ordered list** of identity commitments — the Merkle
/// tree lives off-chain with the peers. Registration appends one storage
/// slot; slashing flips one slot and moves stake. Both are O(1) in gas,
/// independent of group size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MembershipContract {
    /// Required stake per registration (the paper's `v` Eth).
    pub stake_amount: Wei,
    /// Fraction of the stake burnt on slashing, in percent.
    pub burn_percent: u8,
    members: Vec<MemberSlot>,
    /// Active-commitment → slot index, mirroring the contract's
    /// `mapping(uint256 => uint256)`: both the duplicate check in
    /// `register` and the lookup in `slash` are O(1) like the real
    /// storage mapping, not a scan over the member list (which at
    /// 100k members would make registration O(n²) overall).
    index_of: HashMap<[u8; 32], u64>,
}

impl MembershipContract {
    /// Deploys with the given stake requirement and burn percentage.
    pub fn new(stake_amount: Wei, burn_percent: u8) -> MembershipContract {
        assert!(burn_percent <= 100, "burn percentage over 100");
        MembershipContract {
            stake_amount,
            burn_percent,
            members: Vec::new(),
            index_of: HashMap::new(),
        }
    }

    /// Number of slots ever registered (including slashed).
    pub fn slot_count(&self) -> u64 {
        self.members.len() as u64
    }

    /// Number of active members.
    pub fn active_count(&self) -> usize {
        self.members.iter().filter(|m| m.active).count()
    }

    /// Read a slot (free, used by tests and sync bootstrap).
    pub fn slot(&self, index: u64) -> Option<&MemberSlot> {
        self.members.get(index as usize)
    }

    /// `register(commitment)` — appends the commitment to the list.
    ///
    /// # Errors
    ///
    /// Reverts when the stake is wrong or the commitment already active.
    pub fn register(
        &mut self,
        _from: Address,
        value: Wei,
        commitment: Fr,
        meter: &mut GasMeter,
        events: &mut Vec<ChainEvent>,
    ) -> Result<u64, String> {
        meter.calldata(32);
        meter.sload(); // stake parameter
        if value != self.stake_amount {
            return Err(format!(
                "register: stake must be exactly {} wei, got {value}",
                self.stake_amount
            ));
        }
        // duplicate check against a commitment→index mapping slot
        meter.sload();
        if self.index_of.contains_key(&commitment.to_bytes_le()) {
            return Err("register: commitment already registered".into());
        }
        // O(1): one append (one storage slot for the commitment, one for
        // the stake bookkeeping is packed into the same word here), plus
        // the event. No tree maintenance on-chain.
        meter.sstore_set();
        meter.log(2, 40);
        let index = self.members.len() as u64;
        self.members.push(MemberSlot {
            commitment,
            stake: value,
            active: true,
        });
        self.index_of.insert(commitment.to_bytes_le(), index);
        events.push(ChainEvent::MemberRegistered { index, commitment });
        Ok(index)
    }

    /// `slash(secret)` — deletes the member whose commitment is `H(secret)`,
    /// burning `burn_percent` of the stake and paying the rest to the
    /// caller (§III "Routing and Slashing"; §II: "a portion of the staked
    /// fund of the deleted member is burnt and a portion is given to
    /// whoever does deletion").
    ///
    /// # Errors
    ///
    /// Reverts when `H(secret)` is not an active member.
    pub fn slash<E: BalanceEnv>(
        &mut self,
        from: Address,
        secret: Fr,
        meter: &mut GasMeter,
        events: &mut Vec<ChainEvent>,
        env: &mut E,
    ) -> Result<u64, String> {
        meter.calldata(32);
        // the contract recomputes pk = H(sk) once — one in-EVM Poseidon
        meter.poseidon();
        let commitment = poseidon::hash1(secret);
        meter.sload(); // commitment → index lookup
        let index = self
            .index_of
            .remove(&commitment.to_bytes_le())
            .ok_or_else(|| "slash: unknown or already-slashed member".to_string())?
            as usize;
        // O(1): flip the slot, move stake
        meter.sstore_update();
        let slot = &mut self.members[index];
        slot.active = false;
        let burned = slot.stake * self.burn_percent as Wei / 100;
        let rewarded = slot.stake - burned;
        slot.stake = 0;
        env.credit(Address::BURN, burned);
        env.credit(from, rewarded);
        meter.log(3, 72);
        events.push(ChainEvent::MemberSlashed {
            index: index as u64,
            commitment,
            slasher: from,
            burned,
            rewarded,
        });
        Ok(index as u64)
    }
}

/// The baseline contract that keeps the membership **tree** in storage —
/// the design the paper replaces. Every update walks the depth of the
/// tree: O(depth) storage reads+writes *and* O(depth) in-EVM Poseidon
/// permutations.
#[derive(Clone, Debug)]
pub struct OnChainTreeContract {
    stake_amount: Wei,
    depth: usize,
    tree: IncrementalMerkleTree,
    commitments: Vec<Fr>,
}

impl OnChainTreeContract {
    /// Deploys with a tree of the given depth.
    ///
    /// # Errors
    ///
    /// Propagates [`MerkleError::UnsupportedDepth`].
    pub fn new(stake_amount: Wei, depth: usize) -> Result<OnChainTreeContract, MerkleError> {
        Ok(OnChainTreeContract {
            stake_amount,
            depth,
            tree: IncrementalMerkleTree::new(depth)?,
            commitments: Vec::new(),
        })
    }

    /// Current on-chain root.
    pub fn root(&self) -> Fr {
        self.tree.root()
    }

    /// Number of registered leaves.
    pub fn leaf_count(&self) -> u64 {
        self.tree.len()
    }

    /// `register(commitment)` with on-chain tree maintenance.
    ///
    /// # Errors
    ///
    /// Reverts on wrong stake or full tree.
    pub fn register(
        &mut self,
        _from: Address,
        value: Wei,
        commitment: Fr,
        meter: &mut GasMeter,
        events: &mut Vec<ChainEvent>,
    ) -> Result<u64, String> {
        meter.calldata(32);
        meter.sload();
        if value != self.stake_amount {
            return Err(format!(
                "tree-register: stake must be exactly {} wei, got {value}",
                self.stake_amount
            ));
        }
        // O(depth): at every level, read the cached sibling/zero hash,
        // evaluate Poseidon in the EVM and write the updated node.
        for _ in 0..self.depth {
            meter.sload();
            meter.poseidon();
            meter.sstore_update();
        }
        meter.sstore_set(); // the leaf itself
        meter.log(2, 72);
        let index = self
            .tree
            .append(commitment)
            .map_err(|e| format!("tree-register: {e}"))?;
        self.commitments.push(commitment);
        events.push(ChainEvent::MemberRegistered { index, commitment });
        events.push(ChainEvent::TreeRootUpdated {
            root: self.tree.root(),
        });
        Ok(index)
    }

    /// `remove(index, secret)` — baseline deletion: verify `H(secret)`
    /// matches the leaf, then rewrite the branch.
    ///
    /// The incremental tree cannot literally clear interior leaves, so the
    /// state mutation is modeled on the commitment list; gas is metered
    /// exactly as the storage walk would cost, which is what E4 measures.
    ///
    /// # Errors
    ///
    /// Reverts when the index/secret pair is invalid.
    pub fn remove(
        &mut self,
        _from: Address,
        index: u64,
        secret: Fr,
        meter: &mut GasMeter,
        events: &mut Vec<ChainEvent>,
    ) -> Result<(), String> {
        meter.calldata(40);
        meter.poseidon();
        let commitment = poseidon::hash1(secret);
        meter.sload();
        let stored = self
            .commitments
            .get(index as usize)
            .copied()
            .ok_or_else(|| "tree-remove: no such leaf".to_string())?;
        if stored != commitment {
            return Err("tree-remove: secret does not match leaf".into());
        }
        for _ in 0..self.depth {
            meter.sload();
            meter.poseidon();
            meter.sstore_update();
        }
        meter.sstore_update(); // clear the leaf
        meter.log(3, 72);
        events.push(ChainEvent::MemberSlashed {
            index,
            commitment,
            slasher: Address::BURN,
            burned: 0,
            rewarded: 0,
        });
        Ok(())
    }
}

/// The on-chain messaging baseline: every signal is a transaction, visible
/// only once mined (E5 compares its latency against gossip propagation;
/// §III: "we achieve higher message propagation speed as opposed to the
/// on-chain case where messages should be mined before being visible").
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SignalBoardContract {
    messages: Vec<(Address, Vec<u8>)>,
}

impl SignalBoardContract {
    /// Deploys an empty board.
    pub fn new() -> SignalBoardContract {
        SignalBoardContract::default()
    }

    /// Number of posted messages.
    pub fn message_count(&self) -> u64 {
        self.messages.len() as u64
    }

    /// `post(payload)` — store a message on-chain.
    ///
    /// # Errors
    ///
    /// Reverts on empty payloads.
    pub fn post(
        &mut self,
        from: Address,
        payload: Vec<u8>,
        meter: &mut GasMeter,
        events: &mut Vec<ChainEvent>,
    ) -> Result<u64, String> {
        if payload.is_empty() {
            return Err("post: empty payload".into());
        }
        meter.calldata(payload.len());
        // one storage word per 32 payload bytes
        for _ in 0..payload.len().div_ceil(32) {
            meter.sstore_set();
        }
        meter.log(1, payload.len());
        let id = self.messages.len() as u64;
        self.messages.push((from, payload.clone()));
        events.push(ChainEvent::MessagePosted {
            id,
            sender: from,
            payload,
        });
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gas;
    use std::collections::HashMap;

    #[derive(Default)]
    struct MockEnv {
        credits: HashMap<Address, Wei>,
    }

    impl BalanceEnv for MockEnv {
        fn credit(&mut self, to: Address, amount: Wei) {
            *self.credits.entry(to).or_default() += amount;
        }
    }

    fn fr(v: u64) -> Fr {
        Fr::from_u64(v)
    }

    #[test]
    fn register_gas_is_constant_in_group_size() {
        let mut c = MembershipContract::new(10, 50);
        let mut gas_costs = Vec::new();
        for i in 0..200u64 {
            let mut meter = GasMeter::new();
            let mut events = Vec::new();
            c.register(
                Address::from_label("a"),
                10,
                fr(i + 1),
                &mut meter,
                &mut events,
            )
            .unwrap();
            gas_costs.push(meter.used());
        }
        assert!(gas_costs.windows(2).all(|w| w[0] == w[1]), "O(1) gas");
    }

    #[test]
    fn tree_register_gas_scales_with_depth() {
        let mut shallow = OnChainTreeContract::new(10, 10).unwrap();
        let mut deep = OnChainTreeContract::new(10, 20).unwrap();
        let (mut m1, mut m2) = (GasMeter::new(), GasMeter::new());
        let mut ev = Vec::new();
        shallow
            .register(Address::BURN, 10, fr(1), &mut m1, &mut ev)
            .unwrap();
        deep.register(Address::BURN, 10, fr(1), &mut m2, &mut ev)
            .unwrap();
        assert!(m2.used() > m1.used());
        // exactly depth × (SLOAD + POSEIDON + SSTORE_UPDATE) apart
        let per_level = gas::SLOAD + gas::POSEIDON_HASH + gas::SSTORE_UPDATE;
        assert_eq!(m2.used() - m1.used(), 10 * per_level);
    }

    #[test]
    fn registry_beats_tree_by_an_order_of_magnitude_at_depth_20() {
        let mut registry = MembershipContract::new(10, 50);
        let mut tree = OnChainTreeContract::new(10, 20).unwrap();
        let mut ev = Vec::new();
        let (mut m1, mut m2) = (GasMeter::new(), GasMeter::new());
        m1.charge(gas::TX_BASE);
        m2.charge(gas::TX_BASE);
        registry
            .register(Address::BURN, 10, fr(1), &mut m1, &mut ev)
            .unwrap();
        tree.register(Address::BURN, 10, fr(1), &mut m2, &mut ev)
            .unwrap();
        let factor = m2.used() as f64 / m1.used() as f64;
        assert!(factor >= 10.0, "expected ≥10×, got {factor:.1}×");
    }

    #[test]
    fn wrong_stake_reverts() {
        let mut c = MembershipContract::new(100, 50);
        let mut meter = GasMeter::new();
        let mut events = Vec::new();
        let err = c
            .register(Address::BURN, 99, fr(1), &mut meter, &mut events)
            .unwrap_err();
        assert!(err.contains("stake"));
        assert!(events.is_empty());
    }

    #[test]
    fn duplicate_registration_reverts() {
        let mut c = MembershipContract::new(10, 50);
        let mut meter = GasMeter::new();
        let mut events = Vec::new();
        c.register(Address::BURN, 10, fr(1), &mut meter, &mut events)
            .unwrap();
        assert!(c
            .register(Address::BURN, 10, fr(1), &mut meter, &mut events)
            .is_err());
    }

    #[test]
    fn slash_burns_and_rewards() {
        let mut c = MembershipContract::new(100, 50);
        let mut env = MockEnv::default();
        let mut meter = GasMeter::new();
        let mut events = Vec::new();
        let sk = fr(42);
        let commitment = poseidon::hash1(sk);
        c.register(
            Address::from_label("member"),
            100,
            commitment,
            &mut meter,
            &mut events,
        )
        .unwrap();
        let slasher = Address::from_label("slasher");
        let idx = c
            .slash(slasher, sk, &mut meter, &mut events, &mut env)
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(env.credits[&Address::BURN], 50);
        assert_eq!(env.credits[&slasher], 50);
        assert_eq!(c.active_count(), 0);
        assert!(matches!(
            events.last(),
            Some(ChainEvent::MemberSlashed {
                burned: 50,
                rewarded: 50,
                ..
            })
        ));
    }

    #[test]
    fn slash_unknown_secret_reverts() {
        let mut c = MembershipContract::new(100, 50);
        let mut env = MockEnv::default();
        let mut meter = GasMeter::new();
        let mut events = Vec::new();
        assert!(c
            .slash(Address::BURN, fr(7), &mut meter, &mut events, &mut env)
            .is_err());
    }

    #[test]
    fn double_slash_reverts() {
        let mut c = MembershipContract::new(100, 50);
        let mut env = MockEnv::default();
        let mut meter = GasMeter::new();
        let mut events = Vec::new();
        let sk = fr(42);
        c.register(
            Address::BURN,
            100,
            poseidon::hash1(sk),
            &mut meter,
            &mut events,
        )
        .unwrap();
        c.slash(Address::BURN, sk, &mut meter, &mut events, &mut env)
            .unwrap();
        assert!(c
            .slash(Address::BURN, sk, &mut meter, &mut events, &mut env)
            .is_err());
    }

    #[test]
    fn tree_remove_checks_secret() {
        let mut tree = OnChainTreeContract::new(10, 8).unwrap();
        let mut ev = Vec::new();
        let mut m = GasMeter::new();
        let sk = fr(5);
        tree.register(Address::BURN, 10, poseidon::hash1(sk), &mut m, &mut ev)
            .unwrap();
        assert!(tree
            .remove(Address::BURN, 0, fr(6), &mut m, &mut ev)
            .is_err());
        assert!(tree.remove(Address::BURN, 0, sk, &mut m, &mut ev).is_ok());
    }

    #[test]
    fn board_post_costs_scale_with_payload() {
        let mut board = SignalBoardContract::new();
        let mut ev = Vec::new();
        let (mut m1, mut m2) = (GasMeter::new(), GasMeter::new());
        board
            .post(Address::BURN, vec![1u8; 32], &mut m1, &mut ev)
            .unwrap();
        board
            .post(Address::BURN, vec![1u8; 320], &mut m2, &mut ev)
            .unwrap();
        assert!(m2.used() > m1.used() * 5);
        assert_eq!(board.message_count(), 2);
    }

    #[test]
    fn board_rejects_empty() {
        let mut board = SignalBoardContract::new();
        let mut ev = Vec::new();
        let mut m = GasMeter::new();
        assert!(board.post(Address::BURN, vec![], &mut m, &mut ev).is_err());
    }
}
