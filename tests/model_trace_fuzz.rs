//! Trace-fuzz regression harness: replays the committed corpus in
//! `tests/corpus/*.trace` and a bank of fixed-seed generator schedules
//! through the pure model, checking the four machine-readable
//! invariants (nullifier-map boundedness, at-most-one-accept per
//! statement, slashing ⇒ genuine double-signal, GC never drops an
//! in-window entry) after every step.
//!
//! When a generated schedule fails, the harness delta-debugs it to a
//! locally minimal trace and prints it in the corpus format — commit
//! the output as a new `tests/corpus/<name>.trace` so the regression
//! replays forever.

use std::fs;
use std::path::PathBuf;
use waku_rln::model::trace::{
    format_trace, generate_trace, parse_trace, replay, shrink_trace, TraceParams,
};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Every committed corpus trace must parse and replay with all
/// invariants intact.
#[test]
fn committed_corpus_replays_clean() {
    let mut entries: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 4,
        "corpus went missing: only {} traces found",
        entries.len()
    );
    for path in entries {
        let text = fs::read_to_string(&path).expect("readable trace");
        let (params, steps) =
            parse_trace(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        replay(&params, &steps).unwrap_or_else(|v| {
            panic!(
                "{}: invariant broken at step {}: {}",
                path.display(),
                v.step_index,
                v.description
            )
        });
    }
}

/// The corpus traces are not just clean — each pins the specific
/// behavior its name promises.
#[test]
fn corpus_traces_pin_their_named_behaviors() {
    let load = |name: &str| {
        let text = fs::read_to_string(corpus_dir().join(name)).expect("trace exists");
        parse_trace(&text).expect("trace parses")
    };

    // double_signal: the second message triggers secret recovery
    let (p, steps) = load("double_signal.trace");
    let state = replay(&p, &steps).expect("invariants hold");
    assert_eq!(state.stats.spam_detected, 1);
    assert_eq!(
        state.detections[0].evidence.revealed_secret,
        p.member_identity(0).secret()
    );

    // gc_boundary: the entry at the exact GC cutoff survived long enough
    // to catch a double-signal against it
    let (p, steps) = load("gc_boundary.trace");
    let state = replay(&p, &steps).expect("invariants hold");
    assert_eq!(state.stats.spam_detected, 1, "cutoff entry was GC'd away");
    assert!(
        state
            .nullifier_map
            .epoch_numbers()
            .all(|e| e >= 170_000_002),
        "pre-cutoff epoch survived GC"
    );

    // epoch_skew: ±Thr accepted, beyond ignored, map untouched by the
    // out-of-window inputs
    let (p, steps) = load("epoch_skew.trace");
    let state = replay(&p, &steps).expect("invariants hold");
    assert_eq!(state.stats.valid, 2);
    assert_eq!(state.stats.epoch_out_of_window, 2);

    // replay_mutated: duplicate ignored, mutated proof rejected, expired
    // replay ignored — exactly one accept
    let (p, steps) = load("replay_mutated.trace");
    let state = replay(&p, &steps).expect("invariants hold");
    assert_eq!(state.stats.valid, 1);
    assert_eq!(state.stats.duplicates, 1);
    assert_eq!(state.stats.invalid_proof, 1);
    assert_eq!(state.stats.epoch_out_of_window, 1);
    assert_eq!(state.stats.spam_detected, 0);
}

/// Fixed-seed generator bank: 3 window geometries × 40 seeds × 200-step
/// adversarial schedules. Failures shrink to a minimal counterexample
/// printed in the corpus format for committing.
#[test]
fn fixed_seed_generator_bank_upholds_invariants() {
    let geometries = [
        TraceParams {
            epoch_secs: 10,
            max_delay_ms: 20_000,
            members: 4,
        }, // Thr = 2
        TraceParams {
            epoch_secs: 1,
            max_delay_ms: 1_000,
            members: 2,
        }, // Thr = 1
        TraceParams {
            epoch_secs: 5,
            max_delay_ms: 60_000,
            members: 6,
        }, // Thr = 12
    ];
    for params in geometries {
        for seed in 0..40u64 {
            let steps = generate_trace(&params, seed, 200);
            if let Err(violation) = replay(&params, &steps) {
                let shrunk = shrink_trace(&steps, |t| replay(&params, t).is_err());
                let final_violation =
                    replay(&params, &shrunk).expect_err("shrunk trace still fails");
                panic!(
                    "seed {seed}: step {}: {}\n\
                     original failure at step {}: {}\n\
                     minimal reproducing trace (commit to tests/corpus/):\n{}",
                    final_violation.step_index,
                    final_violation.description,
                    violation.step_index,
                    violation.description,
                    format_trace(&params, &shrunk),
                );
            }
        }
    }
}
