//! Integration: the complete Figure-1 lifecycle across every crate —
//! chain registration, group sync, anonymous publishing, routing
//! validation, spam detection, on-chain slashing, reward payment, and
//! continued operation after membership churn.

use waku_rln::core::{PublishError, Testbed, TestbedConfig};
use waku_rln::ethsim::types::{Address, ETHER};
use waku_rln::netsim::NodeId;

fn build(n: usize, seed: u64) -> Testbed {
    let mut tb = Testbed::build(TestbedConfig {
        n_peers: n,
        tree_depth: 12,
        degree: 4,
        seed,
        ..Default::default()
    });
    tb.run(8_000, 1_000);
    tb
}

#[test]
fn full_lifecycle_register_publish_deliver() {
    let mut tb = build(12, 1);
    assert_eq!(tb.active_members(), 12);

    tb.publish(0, b"lifecycle message").unwrap();
    tb.run(15_000, 1_000);
    assert!(tb.delivery_count(b"lifecycle message", 0) >= 10);

    // every relayer that validated it counted it as valid, nobody as spam
    for i in 0..12 {
        let stats = tb.net.node(NodeId(i)).validator().stats();
        assert_eq!(stats.spam_detected, 0);
        assert_eq!(stats.invalid_proof, 0);
    }
}

#[test]
fn all_peers_can_publish_in_their_own_epochs() {
    let mut tb = build(8, 2);
    for peer in 0..8 {
        let payload = format!("from-{peer}").into_bytes();
        tb.publish(peer, &payload).unwrap();
    }
    tb.run(20_000, 1_000);
    for peer in 0..8 {
        let payload = format!("from-{peer}").into_bytes();
        assert!(
            tb.delivery_count(&payload, peer) >= 6,
            "peer {peer}'s message under-delivered"
        );
    }
}

#[test]
fn spam_to_slash_to_reward_roundtrip() {
    let mut tb = build(10, 3);
    let spammer = 6;
    let spammer_addr = tb.address(spammer);
    let balance_before = tb.chain.balance_of(spammer_addr);

    tb.publish_spam(spammer, b"payload-a").unwrap();
    tb.publish_spam(spammer, b"payload-b").unwrap();
    tb.run(40_000, 1_000);

    // detection happened
    assert!(tb.total_spam_detections() >= 1);
    // slashed on-chain: member gone, stake split between burn and slasher
    assert_eq!(tb.active_members(), 9);
    assert!(!tb.is_member(spammer));
    assert_eq!(tb.chain.balance_of(Address::BURN), ETHER / 2);
    let reward_recipients: Vec<usize> = (0..10)
        .filter(|i| tb.chain.balance_of(tb.address(*i)) > 100 * ETHER - ETHER)
        .collect();
    assert_eq!(reward_recipients.len(), 1, "exactly one slasher rewarded");
    assert_ne!(reward_recipients[0], spammer);
    // the spammer's liquid balance never recovered its stake
    assert_eq!(tb.chain.balance_of(spammer_addr), balance_before);

    // the slashed member cannot publish any more
    let err = tb.publish(spammer, b"retry").unwrap_err();
    assert!(matches!(err, PublishError::MembershipLost));
}

#[test]
fn network_keeps_working_after_slashing() {
    let mut tb = build(10, 4);
    tb.publish_spam(2, b"s1").unwrap();
    tb.publish_spam(2, b"s2").unwrap();
    tb.run(40_000, 1_000);
    assert!(!tb.is_member(2));

    // remaining peers' proofs are against the *new* root (the light trees
    // applied the deletion witness) and still verify
    tb.publish(7, b"post-slash message").unwrap();
    tb.run(15_000, 1_000);
    assert!(tb.delivery_count(b"post-slash message", 7) >= 8);
}

#[test]
fn rate_limit_resets_at_epoch_boundary() {
    let mut tb = build(6, 5);
    tb.publish(1, b"epoch-n").unwrap();
    assert!(matches!(
        tb.publish(1, b"epoch-n-again"),
        Err(PublishError::RateLimited { .. })
    ));
    // epoch length is 10 s; advance past the boundary
    tb.run(11_000, 1_000);
    tb.publish(1, b"epoch-n-plus-1").unwrap();
    tb.run(15_000, 1_000);
    assert!(tb.delivery_count(b"epoch-n", 1) >= 4);
    assert!(tb.delivery_count(b"epoch-n-plus-1", 1) >= 4);
}

#[test]
fn deterministic_end_to_end() {
    let run = |seed: u64| {
        let mut tb = build(8, seed);
        tb.publish(0, b"det").unwrap();
        tb.publish_spam(3, b"x1").unwrap();
        tb.publish_spam(3, b"x2").unwrap();
        tb.run(40_000, 1_000);
        (
            tb.delivery_count(b"det", 0),
            tb.active_members(),
            tb.total_spam_detections(),
        )
    };
    assert_eq!(run(42), run(42));
}
