//! The production `RlnValidator` is bit-for-bit the pure model.
//!
//! `RlnValidator::decide` — the order-sensitive stateful core behind both
//! the serial path and the pipeline's stage-4 commit — must be exactly
//! one transition of `wakurln_model::step`. These property tests drive
//! both implementations with the same adversarial input schedules
//! (double-signals, gossip replays, epoch skews beyond `Thr`, mutated
//! proofs) and require the **entire** model state to match after every
//! step: accepted roots, nullifier map, detections, statistics, plus the
//! per-message verdict and charged cost. ≥ 1000 generated cases.

use proptest::prelude::*;
use waku_rln::core::{CostModel, RlnValidator, WireSignal};
use waku_rln::crypto::field::Fr;
use waku_rln::gossipsub::{ValidationResult, Validator};
use waku_rln::model::trace::{fabricate_input, generate_trace, TraceParams, TraceStep};
use waku_rln::model::{step, Input, Outcome, State};
use waku_rln::zksnark::{RlnCircuit, SimSnark};

/// `T = 10 s`, `D = 20 s` ⇒ `Thr = 2`; a small member universe so
/// generated schedules collide constantly.
fn params(members: usize) -> TraceParams {
    TraceParams {
        epoch_secs: 10,
        max_delay_ms: 20_000,
        members,
    }
}

/// A production validator configured identically to
/// [`TraceParams::initial_state`]. The verifying key is irrelevant here
/// (`decide` takes `proof_ok` as an input, exactly like the model), so
/// one cached setup serves every proptest case.
fn production_validator(p: &TraceParams) -> RlnValidator {
    static VK: std::sync::OnceLock<waku_rln::zksnark::VerifyingKey> = std::sync::OnceLock::new();
    let vk = VK.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        SimSnark::setup(RlnCircuit::new(8), &mut rng).1
    });
    RlnValidator::new(
        vk.clone(),
        p.scheme(),
        Fr::from_u64(waku_rln::model::trace::TRACE_ROOT),
        CostModel::default(),
    )
}

fn outcome_of(result: ValidationResult) -> Outcome {
    match result {
        ValidationResult::Accept => Outcome::Accept,
        ValidationResult::Ignore => Outcome::Ignore,
        ValidationResult::Reject => Outcome::Reject,
    }
}

/// Folds a schedule through the pure model (via the owned `step` form)
/// and through the production `decide`, asserting verdict, cost and full
/// state equality after **every** input.
fn assert_lockstep(p: &TraceParams, inputs: &[Input]) {
    let mut model_state: State = p.initial_state();
    let mut production = production_validator(p);
    assert_eq!(
        production.model_state(),
        &model_state,
        "initial states differ"
    );
    for (i, input) in inputs.iter().enumerate() {
        let (next, verdict) = step(model_state, input.clone());
        model_state = next;
        let wire = WireSignal {
            epoch: input.epoch,
            signal: input.signal.clone(),
        };
        let result = production.decide(input.now_ms, &wire, input.proof_ok, input.verify_cost);
        assert_eq!(
            outcome_of(result),
            verdict.outcome,
            "verdict diverged at input {i}"
        );
        assert_eq!(
            production.last_cost_micros(),
            verdict.cost_micros,
            "charged cost diverged at input {i}"
        );
        assert_eq!(
            production.model_state(),
            &model_state,
            "state diverged at input {i}"
        );
    }
}

use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// Generator-driven schedules: epoch skews up to `Thr + 2`, replays,
    /// mutated proofs, multi-epoch clock jumps — 600 cases of up to 60
    /// steps each.
    #[test]
    fn prop_generated_schedules_stay_in_lockstep(
        seed in 0u64..100_000,
        members in 1usize..5,
        len in 1usize..60,
    ) {
        let p = params(members);
        let steps = generate_trace(&p, seed, len);
        let inputs: Vec<Input> = steps.iter().map(|s| fabricate_input(&p, s)).collect();
        assert_lockstep(&p, &inputs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Hand-structured worst cases — 400 cases built directly from
    /// `(member, epoch-offset, msg, proof_ok)` tuples so double-signals
    /// (same member+epoch, different msg), exact replays (same tuple
    /// twice) and epoch skews (offsets straddling `Thr = 2`) all occur by
    /// construction rather than by generator luck.
    #[test]
    fn prop_structured_collision_schedules_stay_in_lockstep(
        picks in proptest::collection::vec(
            (0usize..3, 0u64..6, 0u64..2, any::<bool>()),
            1..40,
        ),
    ) {
        let p = params(3);
        let scheme = p.scheme();
        let inputs: Vec<Input> = picks
            .iter()
            .enumerate()
            .map(|(i, (member, offset, msg, proof_ok))| {
                let now_ms = 1_000 + i as u64 * 1_500; // ~7 steps per epoch
                let local = scheme.epoch_at_ms(now_ms);
                // offsets 0..6 around local: 0..2 in-window behind/at,
                // 3..4 ahead, 5 beyond Thr (out of window)
                let epoch = local.saturating_sub(2) + offset;
                fabricate_input(&p, &TraceStep {
                    now_ms,
                    member: *member,
                    epoch,
                    msg: *msg,
                    proof_ok: *proof_ok,
                })
            })
            .collect();
        assert_lockstep(&p, &inputs);
    }
}

/// A deterministic end-to-end double-signal + replay + skew schedule,
/// kept as a plain test so a bare `cargo test model_equivalence` already
/// exercises the interesting transitions without proptest.
#[test]
fn canonical_double_signal_replay_and_skew_schedule() {
    let p = params(2);
    let scheme = p.scheme();
    let local = scheme.epoch_at_ms(5_000);
    let mk = |now_ms, member, epoch, msg, proof_ok| {
        fabricate_input(
            &p,
            &TraceStep {
                now_ms,
                member,
                epoch,
                msg,
                proof_ok,
            },
        )
    };
    let inputs = vec![
        mk(5_000, 0, local, 0, true),      // fresh accept
        mk(5_100, 0, local, 0, true),      // exact replay → duplicate
        mk(5_200, 0, local, 1, true),      // double-signal → reject + slash
        mk(5_300, 1, local + 2, 0, true),  // future skew at Thr → accept
        mk(5_400, 1, local + 3, 0, true),  // beyond Thr → ignore
        mk(5_500, 1, local, 0, false),     // mutated proof → reject
        mk(35_000, 0, local + 3, 0, true), // clock advanced: now in window
    ];
    assert_lockstep(&p, &inputs);

    // and the end state is the interesting one we think it is
    let mut state = p.initial_state();
    for input in &inputs {
        let (next, _) = step(state, input.clone());
        state = next;
    }
    assert_eq!(state.stats.valid, 3);
    assert_eq!(state.stats.duplicates, 1);
    assert_eq!(state.stats.spam_detected, 1);
    assert_eq!(state.stats.epoch_out_of_window, 1);
    assert_eq!(state.stats.invalid_proof, 1);
    assert_eq!(state.detections.len(), 1);
    assert_eq!(
        state.detections[0].evidence.revealed_secret,
        p.member_identity(0).secret()
    );
}

/// Root-window races: pushing roots between messages must leave wrapper
/// and model in identical states (roots feed the stateless stage, but
/// the window itself lives in the shared `State`).
#[test]
fn root_pushes_between_steps_stay_in_lockstep() {
    let p = params(2);
    let local = p.scheme().epoch_at_ms(5_000);
    let mut model_state = p.initial_state();
    let mut production = production_validator(&p);
    for round in 0u64..20 {
        model_state.push_root(Fr::from_u64(1_000 + round));
        production.push_root(Fr::from_u64(1_000 + round));
        let input = fabricate_input(
            &p,
            &TraceStep {
                now_ms: 5_000 + round * 400,
                member: (round % 2) as usize,
                epoch: local,
                msg: round % 3,
                proof_ok: true,
            },
        );
        let (next, verdict) = step(model_state, input.clone());
        model_state = next;
        let wire = WireSignal {
            epoch: input.epoch,
            signal: input.signal.clone(),
        };
        let result = production.decide(input.now_ms, &wire, input.proof_ok, input.verify_cost);
        assert_eq!(outcome_of(result), verdict.outcome);
        assert_eq!(production.model_state(), &model_state);
    }
    assert_eq!(model_state.accepted_roots.len(), 8);
}
