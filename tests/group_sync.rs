//! Integration: group synchronization (§III) — light trees vs the full
//! mirror under churn, stale witnesses, event ordering, and the anonymity
//! footgun the paper warns about (proving against an old root).

use rand::rngs::StdRng;
use rand::SeedableRng;
use waku_rln::crypto::field::Fr;
use waku_rln::crypto::merkle::{
    zero_hashes, FullMerkleTree, MerkleError, SyncedPathTree, EMPTY_LEAF,
};
use waku_rln::rln::{create_signal, verify_signal, Identity, RlnGroup, SignalValidity};
use waku_rln::zksnark::{RlnCircuit, SimSnark};

#[test]
fn light_and_full_views_agree_under_heavy_churn() {
    let depth = 8;
    let mut rng = StdRng::seed_from_u64(77);
    let mut full = FullMerkleTree::new(depth).unwrap();
    let mut light = SyncedPathTree::new(depth).unwrap();

    let mut alive: Vec<(u64, Fr)> = Vec::new();
    for round in 0..60u64 {
        if round % 3 == 2 && !alive.is_empty() {
            // slash a pseudo-random member
            let victim = (round as usize * 7) % alive.len();
            let (idx, leaf) = alive.remove(victim);
            let witness = full.proof(idx).unwrap();
            full.remove(idx).unwrap();
            light
                .apply_update_with_witness(idx, leaf, EMPTY_LEAF, &witness)
                .unwrap();
        } else if full.next_index() < full.capacity() {
            let leaf = Fr::random(&mut rng);
            let idx = full.append(leaf).unwrap();
            light.apply_append(leaf).unwrap();
            alive.push((idx, leaf));
        }
        assert_eq!(light.root(), full.root(), "divergence at round {round}");
    }
}

#[test]
fn out_of_order_slash_event_is_refused() {
    let depth = 6;
    let mut full = FullMerkleTree::new(depth).unwrap();
    let mut light = SyncedPathTree::new(depth).unwrap();
    for v in 1..=4u64 {
        full.append(Fr::from_u64(v)).unwrap();
        light.apply_append(Fr::from_u64(v)).unwrap();
    }
    // craft a witness, then let the tree move on before applying it
    let stale_witness = full.proof(1).unwrap();
    full.append(Fr::from_u64(99)).unwrap();
    light.apply_append(Fr::from_u64(99)).unwrap();
    full.remove(1).unwrap();
    // note: stale_witness proves leaf 1 under the *old* root
    assert_eq!(
        light.apply_update_with_witness(1, Fr::from_u64(2), EMPTY_LEAF, &stale_witness),
        Err(MerkleError::StaleWitness)
    );
}

#[test]
fn proof_against_stale_root_rejected_after_sync() {
    // the paper's anonymity warning: members must stay in sync, and
    // routers only accept proofs under roots they know
    let depth = 10;
    let mut rng = StdRng::seed_from_u64(3);
    let (pk, vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
    let mut group = RlnGroup::new(depth).unwrap();
    let id = Identity::random(&mut rng);
    let index = group.register(id.commitment()).unwrap();

    let stale_root = group.root();
    let stale_proof = group.membership_proof(index).unwrap();

    // group evolves past the router's root window
    for _ in 0..3 {
        group
            .register(Identity::random(&mut rng).commitment())
            .unwrap();
    }

    let signal = create_signal(
        &id,
        &stale_proof,
        stale_root,
        &pk,
        Fr::from_u64(5),
        b"too old",
        &mut rng,
    )
    .unwrap();
    // statelessly: the proof is fine against the stale root…
    assert_eq!(
        verify_signal(&vk, stale_root, &signal),
        SignalValidity::Valid
    );
    // …but not against the current root
    assert_eq!(
        verify_signal(&vk, group.root(), &signal),
        SignalValidity::InvalidProof
    );
}

#[test]
fn empty_group_roots_match_across_representations() {
    for depth in [4usize, 10, 20] {
        let full = FullMerkleTree::new(depth).unwrap();
        let light = SyncedPathTree::new(depth).unwrap();
        let group = RlnGroup::new(depth).unwrap();
        assert_eq!(full.root(), zero_hashes()[depth]);
        assert_eq!(light.root(), full.root());
        assert_eq!(group.root(), full.root());
    }
}

#[test]
fn slashed_member_cannot_rejoin_with_same_commitment_history() {
    let depth = 8;
    let mut group = RlnGroup::new(depth).unwrap();
    let id = Identity::from_secret(Fr::from_u64(1234));
    group.register(id.commitment()).unwrap();
    group.remove_by_secret(id.secret()).unwrap();
    // the contract-level registry would accept a re-registration with a
    // *new stake*; the local group view does too, at a fresh index —
    // economic deterrence, not a permanent ban (matches the paper: Sybil
    // resistance comes from the stake, not identity blacklists)
    let new_index = group.register(id.commitment()).unwrap();
    assert_eq!(new_index, 1);
    assert_eq!(group.member_count(), 1);
}
