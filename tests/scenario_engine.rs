//! Integration: the built-in scenarios make their claims hold at small
//! scale (the same specs `simctl` runs at 1000+ nodes).

use waku_rln::scenarios::{builtin, library, run_scenario};

#[test]
fn targeted_eclipse_starves_the_victim_not_the_network() {
    let mut spec = builtin("targeted_eclipse", 14, 21).unwrap();
    spec.traffic.publishers = 3;
    let report = run_scenario(&spec);
    let victim_rate = report
        .eclipse_victim_delivery_rate
        .expect("eclipse scenario reports the victim rate");
    // the victim's bootstrap ring censors everything...
    assert!(
        victim_rate < 0.05,
        "eclipse failed: victim still saw {victim_rate}"
    );
    // ...while the rest of the network is healthy
    assert!(
        report.delivery_rate > 0.85,
        "network collateral damage: {}",
        report.delivery_rate
    );
}

#[test]
fn mass_churn_survivors_keep_delivering() {
    let mut spec = builtin("mass_churn", 20, 22).unwrap();
    spec.traffic.publishers = 3;
    let report = run_scenario(&spec);
    assert!(report.peers_crashed >= 2);
    assert!(report.peers_joined >= 1);
    assert_eq!(
        report.peers_final_live,
        report.peers_initial + report.peers_joined - report.peers_crashed
    );
    // crashes are not slashes: every stake is still on the contract
    assert_eq!(
        report.members_end,
        report.members_start + report.peers_joined
    );
    assert!(
        report.delivery_rate > 0.8,
        "survivor delivery collapsed: {}",
        report.delivery_rate
    );
    // dead peers really went dark mid-run
    assert!(report.messages_to_removed_peer > 0);
}

#[test]
fn epoch_boundary_race_is_absorbed_by_the_thr_window() {
    let mut spec = library::epoch_boundary_race(14, 23);
    spec.traffic.publishers = 3;
    let report = run_scenario(&spec);
    // in-flight cross-boundary messages are accepted, not dropped
    assert!(
        report.delivery_rate > 0.9,
        "boundary race dropped traffic: {}",
        report.delivery_rate
    );
    assert!(report.valid_total > 0);
    // the Thr filter stays quiet for honest-but-slow traffic
    assert!(
        report.epoch_out_of_window_total <= report.valid_total / 10,
        "window rejections: {} vs {} valid",
        report.epoch_out_of_window_total,
        report.valid_total
    );
}
