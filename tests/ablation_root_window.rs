//! Ablation: the acceptable-root window.
//!
//! DESIGN.md calls out one implementation choice not pinned by the paper:
//! routers accept proofs against a small window of *recent* membership
//! roots, not only the latest one. The paper's §III ("Group
//! Synchronization") explains why peers must track root changes; this
//! ablation quantifies what happens to honest in-flight messages during
//! registration churn under window sizes 1 vs 8.
//!
//! With window = 1, a message proved against root `R_n` is rejected by
//! every router that has already synced `R_{n+1}` — honest traffic is
//! dropped during every registration. With window = 8 the same message is
//! accepted. Double-signaling detection is unaffected either way (the
//! nullifier map is root-independent).

use rand::rngs::StdRng;
use rand::SeedableRng;
use waku_rln::core::{
    decode_signal, encode_signal, CostModel, EpochScheme, RlnValidator, WireSignal,
};
use waku_rln::crypto::field::Fr;
use waku_rln::gossipsub::ValidationResult;
use waku_rln::rln::{create_signal, Identity, RlnGroup};
use waku_rln::zksnark::{ProvingKey, RlnCircuit, SimSnark, VerifyingKey};

struct Churn {
    group: RlnGroup,
    id: Identity,
    pk: ProvingKey,
    vk: VerifyingKey,
    rng: StdRng,
    scheme: EpochScheme,
}

fn setup() -> Churn {
    let mut rng = StdRng::seed_from_u64(101);
    let depth = 10;
    let (pk, vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
    let mut group = RlnGroup::new(depth).unwrap();
    let id = Identity::random(&mut rng);
    group.register(id.commitment()).unwrap();
    Churn {
        group,
        id,
        pk,
        vk,
        rng,
        scheme: EpochScheme::default(),
    }
}

/// Creates an honest wire signal proved against the *current* root, then
/// applies `churn_registrations` new members (advancing the root).
fn in_flight_message(c: &mut Churn, epoch_ms: u64, churn_registrations: usize) -> WireSignal {
    let epoch = c.scheme.epoch_at_ms(epoch_ms);
    let index = c.group.index_of(c.id.commitment()).unwrap();
    let signal = create_signal(
        &c.id,
        &c.group.membership_proof(index).unwrap(),
        c.group.root(),
        &c.pk,
        c.scheme.to_field(epoch),
        b"in-flight during churn",
        &mut c.rng,
    )
    .unwrap();
    for _ in 0..churn_registrations {
        let newcomer = Identity::random(&mut c.rng);
        c.group.register(newcomer.commitment()).unwrap();
    }
    decode_signal(&encode_signal(epoch, &signal)).unwrap()
}

fn validator_with_window(c: &Churn, window: usize, roots: &[Fr]) -> RlnValidator {
    let mut v = RlnValidator::new(c.vk.clone(), c.scheme, roots[0], CostModel::default());
    v.set_root_window(window);
    for r in &roots[1..] {
        v.push_root(*r);
    }
    v
}

#[test]
fn window_one_drops_honest_in_flight_messages() {
    let mut c = setup();
    let root_before = c.group.root();
    let wire = in_flight_message(&mut c, 1000, 1);
    let root_after = c.group.root();

    let mut narrow = validator_with_window(&c, 1, &[root_before, root_after]);
    assert_eq!(
        narrow.validate_wire(1000, &wire),
        ValidationResult::Reject,
        "window=1 should reject the stale-root proof"
    );
    assert_eq!(narrow.stats().invalid_proof, 1);
}

#[test]
fn window_eight_accepts_honest_in_flight_messages() {
    let mut c = setup();
    let root_before = c.group.root();
    let wire = in_flight_message(&mut c, 1000, 1);
    let root_after = c.group.root();

    let mut wide = validator_with_window(&c, 8, &[root_before, root_after]);
    assert_eq!(
        wide.validate_wire(1000, &wire),
        ValidationResult::Accept,
        "window=8 should accept the recent-root proof"
    );
    assert_eq!(wide.stats().valid, 1);
}

#[test]
fn heavy_churn_exceeding_any_window_still_rejects() {
    // fairness check for the wide window: a proof 20 roots old is stale
    // under window=8 too — the window bounds the exposure, it does not
    // disable synchronization
    let mut c = setup();
    let root_before = c.group.root();
    let wire = in_flight_message(&mut c, 1000, 20);
    // roots: before + 20 churn roots; replay the last 8 into the validator
    let mut roots = vec![root_before];
    roots.push(c.group.root());
    let mut wide = validator_with_window(&c, 8, &roots[1..]);
    assert_eq!(wide.validate_wire(1000, &wire), ValidationResult::Reject);
}

#[test]
fn acceptance_rate_under_churn_quantified() {
    // the ablation series: N honest messages, each proved right before a
    // registration; count acceptance per window size
    for (window, expect_all) in [(1usize, false), (4, true), (8, true)] {
        let mut c = setup();
        let mut accepted = 0;
        let mut total = 0;
        let mut roots = vec![c.group.root()];
        let mut validator = validator_with_window(&c, window, &roots);
        for i in 0..6u64 {
            let t = 1000 + i * 200; // all within one epoch... spread epochs:
            let t = t + i * 11_000; // one message per epoch
            let wire = in_flight_message(&mut c, t, 1);
            roots.push(c.group.root());
            validator.push_root(c.group.root());
            total += 1;
            if validator.validate_wire(t, &wire) == ValidationResult::Accept {
                accepted += 1;
            }
        }
        if expect_all {
            assert_eq!(accepted, total, "window {window} dropped honest traffic");
        } else {
            assert!(
                accepted < total,
                "window {window} unexpectedly accepted everything"
            );
        }
    }
}

#[test]
fn double_signal_detection_independent_of_window() {
    let mut c = setup();
    let epoch = c.scheme.epoch_at_ms(1000);
    let index = c.group.index_of(c.id.commitment()).unwrap();
    let make = |c: &mut Churn, msg: &[u8]| {
        let s = create_signal(
            &c.id,
            &c.group.membership_proof(index).unwrap(),
            c.group.root(),
            &c.pk,
            c.scheme.to_field(epoch),
            msg,
            &mut c.rng,
        )
        .unwrap();
        decode_signal(&encode_signal(epoch, &s)).unwrap()
    };
    let w1 = make(&mut c, b"one");
    let w2 = make(&mut c, b"two");
    for window in [1usize, 8] {
        let mut v = validator_with_window(&c, window, &[c.group.root()]);
        assert_eq!(v.validate_wire(1000, &w1), ValidationResult::Accept);
        assert_eq!(v.validate_wire(1000, &w2), ValidationResult::Reject);
        assert_eq!(v.stats().spam_detected, 1);
        let detections = v.take_detections();
        assert_eq!(detections[0].evidence.revealed_secret, c.id.secret());
    }
}
