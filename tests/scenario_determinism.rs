//! Integration: the scenario engine's determinism contract.
//!
//! Same `ScenarioSpec` + seed ⇒ **byte-identical** `ScenarioReport`
//! JSON, for every built-in scenario. This is what makes scenario runs
//! citable (a report is reproducible from `(name, nodes, seed)` alone)
//! and sweeps comparable across machines.
//!
//! Runs are sized down (and traffic thinned) so each scenario finishes
//! quickly in debug builds; the engine scales the same code path to
//! 1000+ nodes under `simctl`.

use waku_rln::scenarios::{builtin, run_scenario, ScenarioSpec};

/// Two full runs of the spec must serialize to the same bytes.
fn assert_deterministic(mut spec: ScenarioSpec) {
    // thin the traffic to keep debug-mode proof generation cheap
    spec.traffic.publishers = spec.traffic.publishers.min(3);
    spec.traffic.rounds = spec.traffic.rounds.min(3);
    let first = run_scenario(&spec).to_json();
    let second = run_scenario(&spec).to_json();
    assert_eq!(
        first, second,
        "scenario {} not deterministic for seed {}",
        spec.name, spec.seed
    );
    // sanity: the run actually simulated something
    assert!(first.contains("\"messages_sent\""));
    let mut reseeded = spec.clone();
    reseeded.seed += 1;
    let third = run_scenario(&reseeded).to_json();
    assert_ne!(first, third, "seed {} had no effect", spec.seed);
}

#[test]
fn baseline_is_deterministic() {
    assert_deterministic(builtin("baseline", 16, 91).unwrap());
}

#[test]
fn spam_burst_is_deterministic() {
    assert_deterministic(builtin("spam_burst", 16, 92).unwrap());
}

#[test]
fn targeted_eclipse_is_deterministic() {
    assert_deterministic(builtin("targeted_eclipse", 16, 93).unwrap());
}

#[test]
fn heterogeneous_devices_is_deterministic() {
    assert_deterministic(builtin("heterogeneous_devices", 16, 94).unwrap());
}

#[test]
fn mass_churn_is_deterministic() {
    assert_deterministic(builtin("mass_churn", 20, 95).unwrap());
}

#[test]
fn epoch_boundary_race_is_deterministic() {
    assert_deterministic(builtin("epoch_boundary_race", 16, 96).unwrap());
}

#[test]
fn passive_surveillance_is_deterministic() {
    assert_deterministic(builtin("passive_surveillance", 16, 97).unwrap());
}

#[test]
fn deanonymization_sweep_is_deterministic() {
    assert_deterministic(builtin("deanonymization_sweep", 16, 98).unwrap());
}
