//! Integration: the source-anonymity adversary subsystem.
//!
//! The crypto layer already guarantees signals carry no PII
//! (`tests/anonymity.rs`); these tests cover the *network*-level attack
//! surface instead — a colluding fraction of passive observers
//! recording `(message_id, arrival_ms, previous_hop)` and running
//! first-spy / centrality source attribution after the run, per the
//! adversary models of "Who started this rumor?" (Bellet et al.) and
//! "On the Inherent Anonymity of Gossiping" (Guerraoui et al.). Three
//! contracts:
//!
//! 1. the `anonymity_*` report section obeys the PR-4 determinism
//!    contract (byte-identical across scheduler thread counts),
//! 2. the first-hop forward-delay countermeasure degrades attribution
//!    precision without costing delivery,
//! 3. a larger colluding fraction buys the adversary more precision.

use waku_rln::scenarios::{builtin, run_scenario, ScenarioSpec};

fn sweep_spec(nodes: usize, seed: u64, jitter_ms: u64) -> ScenarioSpec {
    let mut spec = builtin("deanonymization_sweep", nodes, seed).expect("builtin");
    spec.publish_jitter_ms = jitter_ms;
    spec
}

#[test]
fn anonymity_section_is_byte_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut spec = sweep_spec(40, 11, 150);
        spec.threads = threads;
        run_scenario(&spec)
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "anonymity report diverged across thread counts"
    );
    // and the section is actually populated, not vacuously null
    assert!(serial.anonymity_observers.unwrap() >= 1);
    assert!(serial.anonymity_observations.unwrap() > 0);
    let observed = serial.anonymity_messages_observed.unwrap();
    assert!(observed > 0, "adversary saw no honest message");
    let precision = serial.anonymity_first_spy_precision_at1.unwrap();
    assert!((0.0..=1.0).contains(&precision));
    assert!(serial.anonymity_set_mean_size.unwrap() >= 1.0);
    assert!(serial.anonymity_arrival_entropy_bits.unwrap() >= 0.0);
}

#[test]
fn scenarios_without_surveillance_emit_a_null_anonymity_section() {
    let mut spec = builtin("baseline", 16, 3).expect("builtin");
    spec.traffic.publishers = 2;
    spec.traffic.rounds = 2;
    let report = run_scenario(&spec);
    assert_eq!(report.anonymity_observers, None);
    assert_eq!(report.anonymity_first_spy_precision_at1, None);
    let json = report.to_json();
    assert!(json.contains("\"anonymity_observers\": null"));
}

#[test]
fn forward_delay_jitter_degrades_attribution_but_not_delivery() {
    // jitter points chosen off the measured precision curve: 0 (no
    // countermeasure), a moderate hold, and one past the point of
    // diminishing returns — precision must fall strictly at each step
    let mut precisions = Vec::new();
    for jitter in [0, 200, 1500] {
        let report = run_scenario(&sweep_spec(60, 2, jitter));
        assert!(
            report.delivery_rate >= 0.99,
            "jitter {jitter} ms cost delivery: {}",
            report.delivery_rate
        );
        precisions.push((
            jitter,
            report.anonymity_first_spy_precision_at1.unwrap(),
            report.propagation_p50_ms.unwrap(),
        ));
    }
    for pair in precisions.windows(2) {
        let (j0, p0, _) = pair[0];
        let (j1, p1, _) = pair[1];
        assert!(
            p1 < p0,
            "precision did not fall: jitter {j0} ms -> {p0}, jitter {j1} ms -> {p1}"
        );
    }
    // the privacy is paid for in propagation latency, as predicted
    assert!(
        precisions.last().unwrap().2 > precisions.first().unwrap().2,
        "jitter should show up in p50 propagation"
    );
}

#[test]
fn larger_colluding_fraction_buys_more_precision() {
    let run = |fraction: f64| {
        let mut spec = sweep_spec(60, 2, 0);
        spec.surveillance = Some(waku_rln::scenarios::SurveillanceSpec {
            observer_fraction: fraction,
        });
        run_scenario(&spec)
    };
    let weak = run(0.05);
    let strong = run(0.25);
    assert!(
        strong.anonymity_first_spy_precision_at1.unwrap()
            > weak.anonymity_first_spy_precision_at1.unwrap(),
        "25% of relays colluding should attribute more than 5%: {:?} vs {:?}",
        strong.anonymity_first_spy_precision_at1,
        weak.anonymity_first_spy_precision_at1
    );
    // more taps also shrink what the observers cannot separate
    assert!(strong.anonymity_observations.unwrap() > weak.anonymity_observations.unwrap());
}
