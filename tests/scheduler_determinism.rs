//! Integration: the sharded scheduler's determinism contract.
//!
//! `tests/scenario_determinism.rs` holds the engine to "same spec + seed
//! ⇒ byte-identical report". This suite holds the **scheduler** to the
//! stronger clause added with the batch → shard → merge refactor: the
//! worker-thread count is *not* part of the simulated world. For every
//! built-in scenario, `threads = 1` and `threads = 8` must serialize to
//! the same `ScenarioReport` bytes — per-node RNG streams are split from
//! the seed by node index (never by shard), and step outputs merge in
//! canonical event order regardless of which thread produced them.
//!
//! Runs are sized down so the whole matrix stays fast in debug builds;
//! `simctl run <scenario> --threads N` exercises the same code path at
//! 1000–10000 nodes (and CI diffs 1000-node reports byte-for-byte).

use waku_rln::scenarios::soak::SoakWorld;
use waku_rln::scenarios::{builtin, run_scenario, ScenarioSpec, SoakConfig, BUILTIN_NAMES};

use proptest::prelude::*;

/// Thins a spec so debug-mode proof generation stays cheap without
/// changing what the scenario exercises.
fn thin(mut spec: ScenarioSpec, threads: usize) -> ScenarioSpec {
    spec.traffic.publishers = spec.traffic.publishers.min(2);
    spec.traffic.rounds = spec.traffic.rounds.min(2);
    spec.threads = threads;
    spec
}

fn report_json(name: &str, nodes: usize, seed: u64, threads: usize) -> String {
    let spec = thin(builtin(name, nodes, seed).expect("known builtin"), threads);
    run_scenario(&spec).to_json()
}

/// Every built-in × 3 seeds: threads=1 and threads=8 must agree byte for
/// byte (and the run must have simulated something).
#[test]
fn all_builtins_are_thread_count_invariant() {
    for name in BUILTIN_NAMES {
        // mass_churn needs a few more peers so crash draws leave a mesh
        let nodes = if name == "mass_churn" { 20 } else { 14 };
        for seed in [11u64, 12, 13] {
            let serial = report_json(name, nodes, seed, 1);
            let sharded = report_json(name, nodes, seed, 8);
            assert_eq!(
                serial, sharded,
                "{name} (seed {seed}): threads=8 diverged from threads=1"
            );
            assert!(serial.contains("\"messages_sent\""));
        }
    }
}

/// Non-vacuity under the full RLN stack: the matrix above sizes runs
/// down, so most of them stay under the inline threshold and never
/// touch the worker pool (netsim's own unit tests cover pool
/// determinism on a toy node). This case drives the *complete*
/// peer — gossip, RLN validation, chain sync — through rounds big
/// enough that the pool must engage, asserts that it did, and still
/// demands byte-identical bytes against the inline run.
#[test]
fn worker_pool_engages_under_the_full_stack_and_stays_byte_identical() {
    let spec_for = |threads: usize| {
        let mut spec = builtin("high_throughput", 32, 44).expect("known builtin");
        spec.threads = threads;
        spec
    };
    let (serial_report, serial_tb) = waku_rln::scenarios::run_scenario_detailed(&spec_for(1));
    assert_eq!(serial_tb.net.parallel_rounds(), 0);
    let (sharded_report, sharded_tb) = waku_rln::scenarios::run_scenario_detailed(&spec_for(8));
    assert!(
        sharded_tb.net.parallel_rounds() > 0,
        "pool never engaged: rounds stayed under the inline threshold and \
         this test would be vacuous"
    );
    assert_eq!(serial_report.to_json(), sharded_report.to_json());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Property form over random seeds and intermediate thread counts:
    /// any two thread counts agree, not just the 1-vs-8 endpoints.
    #[test]
    fn random_seeds_and_thread_counts_agree(seed in 1u64..10_000, threads_a in 2usize..7) {
        let reference = report_json("spam_burst", 14, seed, 1);
        let other = report_json("spam_burst", 14, seed, threads_a);
        prop_assert_eq!(reference, other);
    }
}

/// Checkpoint/restore byte-identity, the hard-stop form: freeze a world
/// mid-run by deep clone, keep driving the original, then "restore"
/// from the clone and replay the same segments. The restored run must
/// land on a byte-identical fingerprint — a single diverging RNG draw,
/// queue ordering, or un-cloned cache poisons every metric downstream,
/// so this is the contract that makes day-long soaks resumable.
#[test]
fn restored_checkpoint_replays_byte_identical_to_uninterrupted_run() {
    let config = SoakConfig {
        nodes: 6,
        seed: 99,
        total_ms: 120_000,
        segment_ms: 60_000,
        checkpoint_every: 0,
        publish_interval_ms: 20_000,
        ..SoakConfig::default()
    };
    let mut live = SoakWorld::new(&config);
    live.run_segment(config.segment_ms);
    // checkpoint here, then let the live world run two more segments
    let checkpoint = live.clone();
    live.run_segment(config.segment_ms);
    live.run_segment(config.segment_ms);
    let uninterrupted = live.fingerprint();

    // hard stop: drop the live world entirely; only the checkpoint
    // survives. Its replay of the same two segments must match.
    drop(live);
    let mut restored = checkpoint;
    restored.run_segment(config.segment_ms);
    restored.run_segment(config.segment_ms);
    assert_eq!(
        restored.fingerprint(),
        uninterrupted,
        "restored checkpoint diverged from the uninterrupted run"
    );
}
