//! Integration: the batched validation pipeline is outcome-equivalent to
//! the serial validator.
//!
//! The pipeline reorders *work* (statement dedup and verdict caching
//! before zkSNARK verification, batch fan-out, deferred commits) but
//! must not reorder *outcomes*: for any message stream and any flush
//! schedule, every message gets the same `ValidationResult`, the
//! aggregate `ValidationStats` are equal, the slashing detections are
//! equal (same spammers, same order), and the nullifier map — including
//! its `Thr`-window GC — ends in the same state. Stronger still: after
//! **every** batch flush (including flushes straddling an epoch
//! boundary) the pipelined validator's entire pure `model::State`
//! snapshot must equal the serial validator's on the same message
//! prefix. The satellite cases the issue calls out are covered by name:
//! duplicates arriving in the same flush window, double-signals split
//! across batches, and flushes that straddle an epoch boundary.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use waku_rln::core::{
    encode_signal, CostModel, EpochScheme, PipelineConfig, RlnValidator, WireSignal,
};
use waku_rln::crypto::field::Fr;
use waku_rln::gossipsub::{SubmitOutcome, Topic, ValidationResult, Validator};
use waku_rln::relay::WakuMessage;
use waku_rln::rln::{create_signal, Identity, RlnGroup};
use waku_rln::zksnark::{ProvingKey, RlnCircuit, SimSnark, VerifyingKey};

const DEPTH: usize = 10;
/// `T = 10 s`, `D = 20 s` ⇒ `Thr = 2`.
fn scheme() -> EpochScheme {
    EpochScheme::new(10, 20_000)
}

/// Shared fixture: a group of members with proving material, plus a pool
/// of helpers to mint (possibly tampered) wire signals.
struct Fixture {
    group: RlnGroup,
    members: Vec<(Identity, u64)>,
    pk: ProvingKey,
    vk: VerifyingKey,
    rng: StdRng,
}

impl Fixture {
    fn new(members: usize, seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let (pk, vk) = SimSnark::setup(RlnCircuit::new(DEPTH), &mut rng);
        let mut group = RlnGroup::new(DEPTH).unwrap();
        let members = (0..members)
            .map(|_| {
                let id = Identity::random(&mut rng);
                let index = group.register(id.commitment()).unwrap();
                (id, index)
            })
            .collect();
        Fixture {
            group,
            members,
            pk,
            vk,
            rng,
        }
    }

    /// A valid wire signal from `member` timestamped `now_ms`.
    fn wire(&mut self, member: usize, now_ms: u64, msg: &[u8]) -> WireSignal {
        let (id, index) = &self.members[member];
        let epoch = scheme().epoch_at_ms(now_ms);
        let signal = create_signal(
            id,
            &self.group.membership_proof(*index).unwrap(),
            self.group.root(),
            &self.pk,
            scheme().to_field(epoch),
            msg,
            &mut self.rng,
        )
        .unwrap();
        WireSignal { epoch, signal }
    }

    fn validator(&self) -> RlnValidator {
        RlnValidator::new(
            self.vk.clone(),
            scheme(),
            self.group.root(),
            CostModel::default(),
        )
    }
}

fn frame(wire: &WireSignal) -> Vec<u8> {
    WakuMessage::new(
        "/test/1/chat/proto",
        encode_signal(wire.epoch, &wire.signal),
    )
    .encode()
}

/// Runs `stream` through a serial validator and through a pipelined one
/// flushed after every `batch` messages, then asserts full equivalence.
/// Returns the pipelined validator for stats inspection.
fn assert_equivalent(f: &Fixture, stream: &[(u64, WireSignal)], batch: usize) -> RlnValidator {
    let topic = Topic::new("t");
    let mut serial = f.validator();
    let mut serial_results: Vec<ValidationResult> = Vec::new();

    let mut piped = f.validator();
    piped.enable_pipeline(PipelineConfig {
        max_batch: batch,
        ..PipelineConfig::default()
    });
    let mut piped_results: Vec<(u64, ValidationResult)> = Vec::new();
    let mut immediate = 0u64;
    for (i, (now, wire)) in stream.iter().enumerate() {
        serial_results.push(serial.validate(*now, &topic, &frame(wire)));
        match piped.submit(*now, &topic, &frame(wire)) {
            SubmitOutcome::Decided(result) => {
                // only undecodable frames decide immediately; tickets are
                // dense, so synthesize the position from the queue order
                piped_results.push((i as u64 + 1_000_000 + immediate, result));
                immediate += 1;
            }
            SubmitOutcome::Deferred(ticket) => {
                let _ = ticket;
            }
        }
        if piped.flush_due() {
            for d in piped.flush(*now) {
                piped_results.push((d.ticket, d.result));
            }
            // after every batch flush — including flushes straddling an
            // epoch boundary — the stage-4 commit must have driven the
            // pure model to the exact state the serial validator reached
            // on the same prefix, not merely the same verdicts
            assert_eq!(
                piped.model_state(),
                serial.model_state(),
                "model state diverged after the flush at message {i}"
            );
        }
    }
    let end = stream.last().map(|(now, _)| *now).unwrap_or(0);
    for d in piped.flush(end) {
        piped_results.push((d.ticket, d.result));
    }
    assert_eq!(
        piped.model_state(),
        serial.model_state(),
        "model state diverged after the final flush"
    );

    // all streams in these tests are decodable, so every message got a
    // ticket and ticket order == submission order
    assert_eq!(immediate, 0, "unexpected immediate decision");
    piped_results.sort_by_key(|(ticket, _)| *ticket);
    let piped_ordered: Vec<ValidationResult> = piped_results.iter().map(|(_, r)| *r).collect();

    assert_eq!(piped_ordered, serial_results, "per-message results differ");
    assert_eq!(piped.stats(), serial.stats(), "aggregate stats differ");
    assert_eq!(
        piped.detections(),
        serial.detections(),
        "slashing detections differ"
    );
    assert_eq!(
        piped.nullifier_map_bytes(),
        serial.nullifier_map_bytes(),
        "nullifier-map state differs after GC"
    );
    piped
}

#[test]
fn duplicates_in_same_flush_window_match_serial_and_skip_verification() {
    let mut f = Fixture::new(3, 1);
    let a = f.wire(0, 11_000, b"a");
    let b = f.wire(1, 12_000, b"b");
    // three copies of `a` and two of `b` inside one flush window
    let stream = vec![
        (11_000, a.clone()),
        (11_100, a.clone()),
        (12_000, b.clone()),
        (12_100, a),
        (12_200, b),
    ];
    let piped = assert_equivalent(&f, &stream, 5);
    let stats = piped.stats();
    assert_eq!(stats.valid, 2);
    assert_eq!(stats.duplicates, 3);
    let ps = piped.pipeline_stats().unwrap();
    // the duplicates resolved against the in-flight batch, not the snark
    assert_eq!(ps.proofs_verified, 2);
    assert_eq!(ps.batch_dedup_hits, 3);
}

#[test]
fn duplicates_across_flushes_hit_the_cache() {
    let mut f = Fixture::new(2, 2);
    let a = f.wire(0, 11_000, b"replayed");
    // one copy per flush window: the later copies must hit the LRU
    let stream = vec![(11_000, a.clone()), (11_500, a.clone()), (12_000, a)];
    let piped = assert_equivalent(&f, &stream, 1);
    let ps = piped.pipeline_stats().unwrap();
    assert_eq!(ps.proofs_verified, 1, "re-deliveries paid verification");
    assert_eq!(ps.cache_hits, 2);
    assert_eq!(piped.stats().duplicates, 2);
}

#[test]
fn double_signal_split_across_batches_matches_serial() {
    let mut f = Fixture::new(3, 3);
    let s1 = f.wire(0, 11_000, b"first");
    let s2 = f.wire(0, 12_000, b"second"); // same epoch ⇒ double-signal
    let filler = f.wire(1, 11_500, b"innocent");
    // batch=2: s1+filler flush first, s2 arrives in the next batch
    let stream = vec![(11_000, s1), (11_500, filler), (12_000, s2)];
    let piped = assert_equivalent(&f, &stream, 2);
    assert_eq!(piped.stats().spam_detected, 1);
    assert_eq!(piped.stats().valid, 2);
    // the detection carries the spammer's identity
    assert_eq!(
        piped.detections()[0].evidence.commitment,
        f.members[0].0.commitment()
    );
}

#[test]
fn epoch_boundary_flush_matches_serial_including_gc() {
    let mut f = Fixture::new(4, 4);
    // epochs tick every 10 s; arrivals straddle the 20 s boundary and the
    // flush happens after it, so the pipeline must replay arrival-time
    // epochs (and GC with arrival-time cutoffs), not flush-time ones
    let stream = vec![
        (19_200, f.wire(0, 19_200, b"pre-boundary")),
        (19_900, f.wire(1, 19_900, b"just-in-time")),
        (20_100, f.wire(2, 20_100, b"post-boundary")),
        (20_500, f.wire(3, 20_500, b"settled")),
    ];
    let piped = assert_equivalent(&f, &stream, 4);
    assert_eq!(piped.stats().valid, 4);
    assert_eq!(piped.stats().epoch_out_of_window, 0);
}

#[test]
fn stale_and_future_epochs_match_serial_across_flushes() {
    let mut f = Fixture::new(4, 5);
    let stale = f.wire(0, 1_000, b"stale"); // epoch far behind by 61 s
    let future = f.wire(1, 90_000, b"future"); // epoch far ahead
    let fresh = f.wire(2, 61_000, b"fresh");
    let stream = vec![(61_000, stale), (61_200, future), (61_400, fresh)];
    let piped = assert_equivalent(&f, &stream, 2);
    assert_eq!(piped.stats().epoch_out_of_window, 2);
    assert_eq!(piped.stats().valid, 1);
}

#[test]
fn nullifier_map_gc_is_identical_under_long_streams() {
    let mut f = Fixture::new(2, 6);
    // one message per epoch over 8 epochs: Thr = 2 keeps only a tail of
    // the nullifier map alive; GC must fire identically although the
    // pipeline commits in batches
    let mut stream = Vec::new();
    for e in 0..8u64 {
        let now = 11_000 + e * 10_000;
        stream.push((
            now,
            f.wire((e % 2) as usize, now, format!("m{e}").as_bytes()),
        ));
    }
    for batch in [1, 3, 8] {
        let piped = assert_equivalent(&f, &stream, batch);
        assert!(piped.nullifier_map_bytes() > 0);
    }
}

#[test]
fn tampered_proofs_and_unknown_roots_match_serial() {
    let mut f = Fixture::new(3, 7);
    let good = f.wire(0, 11_000, b"good");
    let mut tampered = f.wire(1, 11_000, b"bad");
    tampered.signal.proof.binding[0] ^= 1;
    let mut foreign_root = f.wire(2, 11_000, b"foreign");
    foreign_root.signal.root = Fr::from_u64(424_242);
    let stream = vec![
        (11_000, good),
        (11_100, tampered),
        (11_200, foreign_root.clone()),
        (11_300, foreign_root), // repeat: still rejected, still no verify
    ];
    let piped = assert_equivalent(&f, &stream, 4);
    assert_eq!(piped.stats().invalid_proof, 3);
    let ps = piped.pipeline_stats().unwrap();
    // the unknown-root copies never reached the verifier
    assert_eq!(ps.root_window_skips, 2);
    assert_eq!(ps.proofs_verified, 2);
}

#[test]
fn mutated_public_inputs_with_original_binding_cannot_reuse_cached_verdict() {
    let mut f = Fixture::new(2, 8);
    let good = f.wire(0, 11_000, b"legit");
    // the replay attack the statement digest must defeat: take a valid
    // signal and rewrite a public input while keeping the original
    // (valid) binding. The binding is only authenticated inside the
    // verifier, so if the digest ignored these fields the forgery would
    // resolve against the honest copy's cached `true` verdict, land in a
    // fresh nullifier slot, and bypass the rate limit — where the serial
    // validator rejects it as an invalid proof.
    let mut forged_nullifier = good.clone();
    forged_nullifier.signal.internal_nullifier = Fr::from_u64(999_999);
    let mut forged_share = good.clone();
    forged_share.signal.share.y = Fr::from_u64(123_456);
    let stream = vec![
        // same flush window as the original: in-batch dedup must miss
        (11_000, good),
        (11_100, forged_nullifier.clone()),
        (11_200, forged_share),
        // later flush: the cross-flush cache must not confuse the forgery
        // with the (now cached) honest statement either
        (12_000, forged_nullifier),
    ];
    let piped = assert_equivalent(&f, &stream, 3);
    assert_eq!(piped.stats().valid, 1, "a forged variant was accepted");
    assert_eq!(piped.stats().invalid_proof, 3);
    assert!(piped.detections().is_empty(), "forgeries polluted slashing");
    let ps = piped.pipeline_stats().unwrap();
    // each distinct forgery pays its own (failing) verification; only the
    // byte-identical re-delivery hits the cache — with a `false` verdict
    assert_eq!(ps.proofs_verified, 3);
    assert_eq!(ps.cache_hits, 1);
    assert_eq!(ps.batch_dedup_hits, 0);
}

#[test]
fn pipelined_testbed_still_delivers_and_slashes() {
    use waku_rln::core::{Testbed, TestbedConfig};

    let mut tb = Testbed::build(TestbedConfig {
        n_peers: 8,
        tree_depth: 10,
        degree: 4,
        seed: 9,
        pipeline: Some(PipelineConfig::default()),
        ..Default::default()
    });
    tb.run(8_000, 1_000);
    tb.publish(0, b"batched hello").unwrap();
    tb.run(15_000, 1_000);
    // forwarding completes through flush timers; everyone still converges
    assert!(tb.delivery_count(b"batched hello", 0) >= 6);

    tb.publish_spam(3, b"spam-a").unwrap();
    tb.publish_spam(3, b"spam-b").unwrap();
    tb.run(30_000, 1_000);
    assert!(
        tb.total_spam_detections() >= 1,
        "no detection under batching"
    );
    assert!(!tb.is_member(3), "spammer not slashed under batching");
    // at least one relay actually amortized proof work
    use waku_rln::netsim::NodeId;
    let amortized = (0..8).any(|i| {
        let ps = tb
            .net
            .node(NodeId(i))
            .validator()
            .pipeline_stats()
            .expect("pipeline enabled");
        ps.submitted > 0 && ps.proofs_verified <= ps.submitted
    });
    assert!(amortized);
}

/// Mutations the property test applies to pool messages.
#[derive(Clone, Copy, Debug)]
enum Mutation {
    /// Deliver as minted.
    Keep,
    /// Flip a proof byte (invalid proof).
    TamperProof,
    /// Re-deliver the previous stream entry verbatim (gossip duplicate).
    DuplicatePrevious,
    /// Re-deliver the previous entry with a rewritten internal nullifier
    /// but its original binding (the forged-replay rate-limit bypass).
    MutatePreviousNullifier,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary interleavings of honest traffic, spam pairs, duplicates
    /// and tampering, under arbitrary batch sizes, decide exactly like
    /// the serial validator.
    #[test]
    fn prop_pipeline_equals_serial(
        seed in 0u64..1_000,
        batch in 1usize..7,
        picks in proptest::collection::vec((0usize..6, 0u64..3, 0u8..4), 3..10),
    ) {
        let mut f = Fixture::new(6, 1_000 + seed);
        let mut stream: Vec<(u64, WireSignal)> = Vec::new();
        for (member, epoch_slot, mutation) in picks {
            let mutation = match mutation {
                0 => Mutation::Keep,
                1 => Mutation::TamperProof,
                2 => Mutation::DuplicatePrevious,
                _ => Mutation::MutatePreviousNullifier,
            };
            let now = 11_000 + epoch_slot * 10_000 + stream.len() as u64 * 97;
            match mutation {
                Mutation::DuplicatePrevious if !stream.is_empty() => {
                    let prev = stream.last().unwrap().1.clone();
                    stream.push((now.max(stream.last().unwrap().0), prev));
                }
                Mutation::MutatePreviousNullifier if !stream.is_empty() => {
                    let mut prev = stream.last().unwrap().1.clone();
                    prev.signal.internal_nullifier = Fr::from_u64(777_000 + now);
                    stream.push((now.max(stream.last().unwrap().0), prev));
                }
                Mutation::DuplicatePrevious | Mutation::MutatePreviousNullifier | Mutation::Keep => {
                    let wire = f.wire(member, now, format!("m-{member}-{now}").as_bytes());
                    stream.push((now, wire));
                }
                Mutation::TamperProof => {
                    let mut wire = f.wire(member, now, format!("t-{member}-{now}").as_bytes());
                    wire.signal.proof.binding[7] ^= 0x40;
                    stream.push((now, wire));
                }
            }
        }
        // arrival times must be non-decreasing for a meaningful replay
        stream.sort_by_key(|(now, _)| *now);
        assert_equivalent(&f, &stream, batch);
    }
}
