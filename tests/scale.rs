//! Integration: a longer-running, larger network — multiple epochs of
//! honest traffic, several concurrent spammers, churn via slashing and
//! crashes, and late joiners, all in one deterministic scenario.
//!
//! Ported to the scenario engine: the hand-wired world-building that
//! used to live here (explicit publish lists, manual run slicing, per
//! node stat loops) is now a `ScenarioSpec`. The original assertions are
//! preserved — aggregate ones against the `ScenarioReport`, per-message
//! and late-joiner ones against the finished `Testbed` the engine hands
//! back.

use std::collections::HashMap;
use waku_rln::netsim::NodeId;
use waku_rln::scenarios::{
    run_scenario_detailed, ChurnAction, ChurnEvent, ScenarioSpec, SpamSpec, TrafficSpec,
};

#[test]
fn thirty_peers_three_epochs_two_spammers_churn_and_late_joiners() {
    let mut spec = ScenarioSpec::baseline(30, 2022);
    spec.name = "scale".to_string();
    spec.tree_depth = 12;
    // epoch 1: a batch of honest traffic while two members double-signal;
    // later rounds exercise the post-slash, post-join network
    spec.traffic = TrafficSpec {
        publishers: 8,
        rounds: 3,
        start_ms: 10_000,
        interval_ms: 45_000,
    };
    spec.spam = Some(SpamSpec {
        spammers: 2,
        burst: 2,
        at_ms: 15_000,
    });
    spec.churn = vec![
        // a peer crashes mid-run (process death, not slashing)
        ChurnEvent {
            at_ms: 40_000,
            action: ChurnAction::Crash { peers: 1 },
        },
        // and a late joiner arrives after the churn
        ChurnEvent {
            at_ms: 60_000,
            action: ChurnAction::Join { peers: 1 },
        },
    ];
    spec.drain_ms = 60_000;

    let (report, tb) = run_scenario_detailed(&spec);

    // both spammers slashed, the crash did not cost a membership
    assert_eq!(report.spammers_slashed, 2, "spammers survived");
    assert!(report.spam_detections >= 1);
    // 30 honest + 2 spammers − 2 slashed + 1 joined
    assert_eq!(report.members_end, 31);
    assert_eq!(report.peers_crashed, 1);
    assert_eq!(report.peers_joined, 1);

    // honest messages delivered (the original bar: ≥ 25 of 29 receivers)
    assert!(report.honest_published >= 20);
    assert!(
        report.delivery_rate >= 25.0 / 29.0,
        "under-delivered: {}",
        report.delivery_rate
    );
    // ...and per message, not just in aggregate: every honest payload
    // (engine traffic is "r{round}-p{peer}") reached ≥ 25 live peers
    let mut receivers_of: HashMap<Vec<u8>, usize> = HashMap::new();
    for i in 0..tb.peer_count() {
        if !tb.is_live(i) {
            continue;
        }
        for (payload, _) in tb.net.node(NodeId(i)).app_deliveries() {
            if payload.starts_with(b"r") {
                *receivers_of.entry(payload).or_default() += 1;
            }
        }
    }
    assert_eq!(receivers_of.len() as u64, report.honest_published);
    for (payload, receivers) in &receivers_of {
        assert!(
            *receivers >= 25,
            "{} reached only {receivers} live peers",
            String::from_utf8_lossy(payload)
        );
    }

    // spam contained: at most one majority delivery per spammer
    assert!(report.spam_delivered_majority <= 2);

    // validators stayed clean: no honest message was ever counted as
    // malformed, and real traffic was validated
    assert_eq!(report.malformed_total, 0);
    assert!(report.valid_total > 0);

    // bounded state everywhere: nullifier maps hold ≤ Thr+1 epochs
    assert!(
        report.nullifier_map_max_bytes < 64 * 1024,
        "nullifier map grew to {} B",
        report.nullifier_map_max_bytes
    );

    // light membership trees stayed tiny (E3 property, in vivo)
    assert!(
        report.membership_tree_max_bytes < 2 * 1024,
        "tree storage {} B",
        report.membership_tree_max_bytes
    );

    // the late joiner is a synced member with the same root as peer 0
    let joiner = tb.peer_count() - 1;
    assert!(tb.is_member(joiner), "late joiner not registered");
    assert_eq!(
        tb.net.node(NodeId(joiner)).membership_root(),
        tb.net.node(NodeId(0)).membership_root(),
        "late joiner's root diverged"
    );

    // traffic still flows from the newcomer: keep driving the finished
    // testbed, as the original test published from the joiner directly
    let mut tb = tb;
    tb.publish(joiner, b"hello from the late joiner")
        .expect("joiner can publish");
    tb.run(15_000, 1_000);
    assert!(
        tb.delivery_count(b"hello from the late joiner", joiner) >= 24,
        "late joiner's message under-delivered: {}",
        tb.delivery_count(b"hello from the late joiner", joiner)
    );
}
