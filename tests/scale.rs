//! Integration: a longer-running, larger network — multiple epochs of
//! honest traffic, several concurrent spammers, churn via slashing, and a
//! late joiner, all in one deterministic scenario.

use waku_rln::core::{Testbed, TestbedConfig};
use waku_rln::netsim::NodeId;

#[test]
fn thirty_peers_three_epochs_two_spammers_one_late_joiner() {
    let mut tb = Testbed::build(TestbedConfig {
        n_peers: 30,
        tree_depth: 12,
        degree: 6,
        seed: 2022,
        ..Default::default()
    });
    tb.run(10_000, 1_000); // mesh formation
    assert_eq!(tb.active_members(), 30);

    // epoch 1: a batch of honest traffic + two double-signaling spammers
    for peer in [1usize, 5, 9, 13, 17, 21, 25, 29] {
        let payload = format!("e1-from-{peer}").into_bytes();
        tb.publish(peer, &payload).unwrap();
    }
    for spammer in [3usize, 7] {
        tb.publish_spam(spammer, format!("sp-{spammer}-a").as_bytes())
            .unwrap();
        tb.publish_spam(spammer, format!("sp-{spammer}-b").as_bytes())
            .unwrap();
    }
    tb.run(40_000, 1_000);

    // both spammers slashed, honest messages delivered
    assert!(!tb.is_member(3), "spammer 3 survived");
    assert!(!tb.is_member(7), "spammer 7 survived");
    assert_eq!(tb.active_members(), 28);
    for peer in [1usize, 5, 9, 13, 17, 21, 25, 29] {
        let payload = format!("e1-from-{peer}").into_bytes();
        assert!(
            tb.delivery_count(&payload, peer) >= 25,
            "peer {peer}'s epoch-1 message under-delivered"
        );
    }

    // a late joiner arrives after the churn
    let newbie = tb.add_peer(&[0, 10, 20]);
    tb.run(25_000, 1_000);
    assert!(tb.is_member(newbie));
    assert_eq!(tb.active_members(), 29);

    // next epoch: traffic still flows, including from the newcomer
    for peer in [2usize, 14, 26, newbie] {
        let payload = format!("e2-from-{peer}").into_bytes();
        tb.publish(peer, &payload).unwrap();
    }
    tb.run(20_000, 1_000);
    for peer in [2usize, 14, 26, newbie] {
        let payload = format!("e2-from-{peer}").into_bytes();
        assert!(
            tb.delivery_count(&payload, peer) >= 24,
            "peer {peer}'s epoch-2 message under-delivered"
        );
    }

    // validators stayed clean: no honest message was ever counted as spam
    let mut total_valid = 0u64;
    for i in 0..tb.peer_count() {
        let stats = tb.net.node(NodeId(i)).validator().stats();
        total_valid += stats.valid;
        assert_eq!(stats.malformed, 0);
    }
    assert!(total_valid > 0);

    // bounded state everywhere: nullifier maps hold ≤ Thr+1 epochs
    for i in 0..tb.peer_count() {
        let bytes = tb.net.node(NodeId(i)).validator().nullifier_map_bytes();
        assert!(
            bytes < 64 * 1024,
            "peer {i} nullifier map grew to {bytes} B"
        );
    }

    // light membership trees stayed tiny (E3 property, in vivo)
    for i in 0..tb.peer_count() {
        let bytes = tb.net.node(NodeId(i)).membership_storage_bytes();
        assert!(bytes < 2 * 1024, "peer {i} tree storage {bytes} B");
    }
}
