//! Integration: the privacy properties the paper claims (§IV "Security"):
//! peers "do not disclose any piece of PII in any phase" and "prove their
//! compliance with the messaging rate without leaving any trace to their
//! public keys".

use rand::rngs::StdRng;
use rand::SeedableRng;
use waku_rln::core::{decode_signal, encode_signal};
use waku_rln::crypto::field::Fr;
use waku_rln::crypto::shamir;
use waku_rln::rln::{create_signal, Identity, RlnGroup, Signal};
use waku_rln::zksnark::{ProvingKey, RlnCircuit, SimSnark};

struct World {
    group: RlnGroup,
    ids: Vec<Identity>,
    pk: ProvingKey,
    rng: StdRng,
}

fn world(members: usize) -> World {
    let mut rng = StdRng::seed_from_u64(55);
    let depth = 10;
    let (pk, _vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
    let mut group = RlnGroup::new(depth).unwrap();
    let ids: Vec<Identity> = (0..members)
        .map(|_| {
            let id = Identity::random(&mut rng);
            group.register(id.commitment()).unwrap();
            id
        })
        .collect();
    World {
        group,
        ids,
        pk,
        rng,
    }
}

fn signal_from(w: &mut World, member: usize, epoch: u64, msg: &[u8]) -> Signal {
    let index = w.group.index_of(w.ids[member].commitment()).unwrap();
    create_signal(
        &w.ids[member],
        &w.group.membership_proof(index).unwrap(),
        w.group.root(),
        &w.pk,
        Fr::from_u64(epoch),
        msg,
        &mut w.rng,
    )
    .unwrap()
}

/// The wire bytes of a signal must not contain the sender's commitment,
/// secret key, or leaf index in any recognizable encoding.
#[test]
fn wire_signal_contains_no_identity_material() {
    let mut w = world(5);
    let member = 2;
    let signal = signal_from(&mut w, member, 9, b"anonymity check");
    let wire = encode_signal(9, &signal);

    let commitment = w.ids[member].commitment().to_bytes_le();
    let secret = w.ids[member].secret().to_bytes_le();
    assert!(
        !contains(&wire, &commitment),
        "commitment leaked on the wire"
    );
    assert!(!contains(&wire, &secret), "secret leaked on the wire");
    // even 8-byte prefixes must not appear
    assert!(!contains(&wire, &commitment[..8]));
    assert!(!contains(&wire, &secret[..8]));
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Signals from different members in the same epoch are unlinkable to
/// their indices: the only member-specific values (nullifier, share) are
/// hash/field outputs, and the proof bytes are fresh randomness.
#[test]
fn signals_do_not_reveal_member_index() {
    let mut w = world(8);
    // two members publish; an observer comparing the two signals learns
    // epoch and message but nothing positionally about the senders:
    let s1 = signal_from(&mut w, 1, 4, b"message one");
    let s2 = signal_from(&mut w, 6, 4, b"message two");
    assert_eq!(s1.root, s2.root);
    assert_eq!(s1.external_nullifier, s2.external_nullifier);
    assert_ne!(s1.internal_nullifier, s2.internal_nullifier);
    // nullifiers are hashes — check they're not trivially index-encoding
    assert_ne!(s1.internal_nullifier, Fr::from_u64(1));
    assert_ne!(s2.internal_nullifier, Fr::from_u64(6));
}

/// One share per epoch reveals nothing: for *any* candidate secret there
/// is a consistent line through the single observed share.
#[test]
fn single_share_is_perfectly_hiding() {
    let mut w = world(3);
    let s = signal_from(&mut w, 0, 7, b"only message this epoch");
    for candidate in [Fr::from_u64(1), Fr::from_u64(999), w.ids[1].secret()] {
        let slope = (s.share.y - candidate) * s.share.x.inverse().unwrap();
        let reconstructed = shamir::share_on_line(candidate, slope, s.share.x);
        assert_eq!(reconstructed, s.share);
    }
}

/// Two shares in *different* epochs are also safe (different lines).
#[test]
fn cross_epoch_shares_do_not_reconstruct() {
    let mut w = world(3);
    let s1 = signal_from(&mut w, 0, 7, b"epoch 7");
    let s2 = signal_from(&mut w, 0, 8, b"epoch 8");
    let wrong = shamir::recover_line_secret(&s1.share, &s2.share).unwrap();
    assert_ne!(wrong, w.ids[0].secret());
}

/// …but two shares in the same epoch reconstruct exactly (the designed
/// privacy/punishment boundary).
#[test]
fn same_epoch_shares_reconstruct_exactly() {
    let mut w = world(3);
    let s1 = signal_from(&mut w, 0, 7, b"first");
    let s2 = signal_from(&mut w, 0, 7, b"second");
    assert_eq!(
        shamir::recover_line_secret(&s1.share, &s2.share),
        Some(w.ids[0].secret())
    );
}

/// Proof bytes are rerandomized: the same statement proved twice yields
/// different proof bytes (no watermarking channel).
#[test]
fn proofs_are_rerandomized_per_publication() {
    let mut w = world(3);
    let s1 = signal_from(&mut w, 0, 7, b"same message");
    let s2 = signal_from(&mut w, 0, 7, b"same message");
    assert_eq!(s1.internal_nullifier, s2.internal_nullifier);
    assert_eq!(s1.share, s2.share); // deterministic share: same (m, sk, ∅)
    assert_ne!(s1.proof.elements, s2.proof.elements); // fresh randomness
}

/// Round-tripping through the wire codec preserves every field (no
/// accidental metadata added by serialization).
#[test]
fn codec_adds_no_metadata() {
    let mut w = world(8);
    let s = signal_from(&mut w, 7, 12, b"roundtrip");
    let decoded = decode_signal(&encode_signal(12, &s)).unwrap();
    assert_eq!(decoded.signal, s);
    assert_eq!(decoded.epoch, 12);
    // encoded size is exactly the fixed overhead + message, nothing more
    let wire = encode_signal(12, &s);
    assert_eq!(wire.len(), 8 + 32 * 4 + 32 * 4 + 32 + 4 + s.message.len());
}
