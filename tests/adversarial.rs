//! Integration: adversarial behaviours against the full stack — replays,
//! forged proofs, non-members, malformed frames, packet loss, and the
//! comparison baselines.

use waku_rln::baselines::{epoch_replay_attack, run_peer_scoring, Scenario};
use waku_rln::core::{EpochScheme, Testbed, TestbedConfig};
use waku_rln::scenarios::{run_scenario, ScenarioSpec, SpamSpec};

use waku_rln::netsim::NodeId;
use waku_rln::relay::WakuMessage;

fn build(n: usize, seed: u64) -> Testbed {
    let mut tb = Testbed::build(TestbedConfig {
        n_peers: n,
        tree_depth: 12,
        degree: 4,
        seed,
        epoch: EpochScheme::new(10, 20_000),
        ..Default::default()
    });
    tb.run(8_000, 1_000);
    tb
}

#[test]
fn replay_attack_blocked_outside_thr_window() {
    let mut tb = build(8, 10);
    let results = epoch_replay_attack(&mut tb, 0, &[-50, -2, 0, 2, 50]);
    for (offset, delivered) in results {
        let expected = offset.abs() <= 2;
        assert_eq!(delivered, expected, "offset {offset}");
    }
}

#[test]
fn burst_spammer_is_neutralized() {
    // ported to the scenario engine: same world (8 honest peers, one
    // member bursting 6 double-signals), same assertions, now against
    // the ScenarioReport instead of hand-driven attack plumbing
    let mut spec = ScenarioSpec::baseline(8, 11);
    spec.name = "burst".to_string();
    spec.tree_depth = 12;
    spec.spam = Some(SpamSpec {
        spammers: 1,
        burst: 6,
        at_ms: 15_000,
    });
    spec.drain_ms = 60_000;
    let report = run_scenario(&spec);
    assert_eq!(report.spammers_slashed, 1, "attacker kept membership");
    assert!(report.spam_detections >= 1);
    assert!(report.spam_delivered_majority <= 1);
}

#[test]
fn garbage_frames_are_rejected_and_penalized() {
    let mut tb = build(6, 12);
    // a malicious peer injects a WAKU frame with no RLN fields at all
    tb.net.invoke(NodeId(0), |node, ctx| {
        let msg = WakuMessage::new("/junk", b"not an rln signal".to_vec());
        node.inject_raw(ctx, &msg)
    });
    tb.run(15_000, 1_000);
    // nobody delivered it to the application
    assert_eq!(tb.delivery_count(b"not an rln signal", 0), 0);
    // at least one direct neighbour counted a malformed frame
    let malformed: u64 = (0..6)
        .map(|i| tb.net.node(NodeId(i)).validator().stats().malformed)
        .sum();
    assert!(malformed >= 1, "no validator saw the garbage");
}

#[test]
fn packet_loss_does_not_break_protection() {
    let mut tb = build(10, 13);
    tb.net.set_loss_probability(0.15);
    // honest message still gets through (gossip recovery)
    tb.publish(0, b"lossy but honest").unwrap();
    // spammer still gets caught
    tb.publish_spam(4, b"ls1").unwrap();
    tb.publish_spam(4, b"ls2").unwrap();
    tb.run(60_000, 1_000);
    assert!(tb.delivery_count(b"lossy but honest", 0) >= 7);
    assert!(!tb.is_member(4), "spammer survived packet loss");
}

#[test]
fn peer_scoring_baseline_fails_where_rln_succeeds() {
    // cross-check at integration level: the same flood volume that RLN
    // neutralizes (burst test above) sails through peer scoring
    let out = run_peer_scoring(Scenario {
        honest_peers: 7,
        spam_k: 6,
        seed: 14,
    });
    assert!(out.spam_delivery_rate >= 0.9);
    assert!(!out.attacker_globally_excluded);
}
