//! Storage report: what one peer actually persists (paper §IV).
//!
//! "Each peer persists a 32B public and secret keys and a ≈3.89MB prover
//! key. A membership tree with depth 20 requires 67MB storage which can
//! be optimized to 0.128KB using [9]."
//!
//! Run with: `cargo run --example storage_report`

use rand::rngs::StdRng;
use rand::SeedableRng;
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::{FullMerkleTree, IncrementalMerkleTree, SyncedPathTree};
use wakurln_rln::Identity;
use wakurln_zksnark::{RlnCircuit, SimSnark};

fn human(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.2} KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    println!("== per-peer storage, depth-20 membership tree ==");

    let identity = Identity::random(&mut rng);
    println!(
        "{:<28} {:>12}   (paper: 32 B)",
        "secret key",
        human(identity.secret().to_bytes_le().len())
    );
    println!(
        "{:<28} {:>12}   (paper: 32 B)",
        "public key",
        human(identity.commitment().to_bytes_le().len())
    );

    let (proving_key, verifying_key) = SimSnark::setup(RlnCircuit::new(20), &mut rng);
    println!(
        "{:<28} {:>12}   (paper: ~3.89 MB)",
        "prover key",
        human(proving_key.size_bytes())
    );
    println!(
        "{:<28} {:>12}",
        "verifier key",
        human(verifying_key.size_bytes())
    );

    println!();
    println!("membership tree representations (depth 20, capacity 2^20):");
    let full = FullMerkleTree::new(20).expect("depth ok");
    println!(
        "{:<28} {:>12}   (paper: 67 MB)",
        "full tree (relayer/slasher)",
        human(full.storage_bytes())
    );
    let frontier = IncrementalMerkleTree::new(20).expect("depth ok");
    println!(
        "{:<28} {:>12}",
        "append frontier only",
        human(frontier.storage_bytes())
    );
    let mut light = SyncedPathTree::new(20).expect("depth ok");
    light.register_own(Fr::from_u64(1)).expect("capacity");
    println!(
        "{:<28} {:>12}   (paper claim for [9]: 0.128 KB)",
        "own-path light tree [9]",
        human(light.storage_bytes())
    );

    println!();
    println!(
        "light-tree reduction vs full tree: {:.0}x",
        full.storage_bytes() as f64 / light.storage_bytes() as f64
    );
    println!("(our own-path tree keeps frontier + path = 2·depth+1 hashes; the");
    println!("paper's 0.128 KB counts only the ~4-hash diff state of [9] — same");
    println!("O(depth)-vs-O(2^depth) conclusion, constant-factor difference.)");
}
