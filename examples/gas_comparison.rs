//! Why the paper keeps the Merkle tree off-chain: gas.
//!
//! Registers members through both contract designs on one simulated chain
//! and prints the per-operation gas — the registry (paper design) is O(1)
//! while the on-chain tree (original RLN proposal) pays O(depth) storage
//! writes and in-EVM Poseidon permutations per update (§III: "optimizing
//! gas consumption by an order of magnitude").
//!
//! Run with: `cargo run --example gas_comparison`

use wakurln_crypto::field::Fr;
use wakurln_ethsim::types::{Address, CallData, ETHER};
use wakurln_ethsim::{Chain, ChainConfig};

fn main() {
    println!("== registration gas: registry (off-chain tree) vs on-chain tree ==");
    let mut chain = Chain::new(ChainConfig {
        tree_depth: 20,
        ..ChainConfig::default()
    });
    let user = Address::from_label("gas-example");
    chain.fund(user, 1000 * ETHER);

    println!(
        "{:>8} {:>18} {:>18} {:>8}",
        "member", "registry gas", "tree gas", "ratio"
    );
    let mut t = 0;
    for i in 0..8u64 {
        chain
            .submit(
                user,
                ETHER,
                CallData::Register {
                    commitment: Fr::from_u64(100 + i),
                },
            )
            .expect("funded");
        chain
            .submit(
                user,
                ETHER,
                CallData::TreeRegister {
                    commitment: Fr::from_u64(100 + i),
                },
            )
            .expect("funded");
        t += chain.config().block_interval;
        let receipts = chain.advance_to(t);
        let registry = receipts[0].gas_used;
        let tree = receipts[1].gas_used;
        println!(
            "{:>8} {:>18} {:>18} {:>7.1}x",
            i,
            registry,
            tree,
            tree as f64 / registry as f64
        );
    }

    println!();
    println!(
        "registry slots used: {}, on-chain tree leaves: {}",
        chain.membership().slot_count(),
        chain.tree_baseline().leaf_count()
    );
    println!(
        "note: the tree design also pays {} in-EVM Poseidon permutations per update",
        20
    );
}
