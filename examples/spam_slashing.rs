//! The economics of spam: a double-signaling attacker is detected by
//! routing peers, their secret key is reconstructed from the two leaked
//! Shamir shares, and they are slashed on the membership contract — half
//! the stake burnt, half rewarded to the detecting peer (paper §II/§III).
//!
//! Run with: `cargo run --example spam_slashing`

use waku_rln_relay::{Testbed, TestbedConfig};
use wakurln_ethsim::types::{Address, ETHER};

fn main() {
    println!("== double-signaling → detection → slashing ==");
    let mut testbed = Testbed::build(TestbedConfig {
        n_peers: 10,
        tree_depth: 12,
        degree: 4,
        seed: 7,
        ..Default::default()
    });
    testbed.run(8_000, 1_000);

    let spammer = 4usize;
    let spammer_address = testbed.address(spammer);
    println!(
        "spammer (peer {spammer}) balance before: {} wei, members: {}",
        testbed.chain.balance_of(spammer_address),
        testbed.active_members(),
    );

    // The attack: two *different* messages in one epoch. The attacker's
    // own node bypasses its local rate limiter — only the network-side
    // nullifier maps can catch this.
    testbed
        .publish_spam(spammer, b"spam message one")
        .expect("member can sign");
    testbed
        .publish_spam(spammer, b"spam message two")
        .expect("member can sign");
    println!("spammer published two messages in one epoch (double-signal)");

    // Routing peers see both signals with the same internal nullifier,
    // combine the shares, reconstruct sk, and submit slash transactions.
    testbed.run(40_000, 1_000);

    println!(
        "spam detections across validators: {}",
        testbed.total_spam_detections()
    );
    println!("members after slashing: {}", testbed.active_members());
    assert_eq!(testbed.active_members(), 9, "spammer must be removed");
    assert!(!testbed.is_member(spammer), "spammer lost membership");

    // Follow the money.
    let burned = testbed.chain.balance_of(Address::BURN);
    println!(
        "burnt stake: {burned} wei ({}% of 1 ETH)",
        burned * 100 / ETHER
    );
    for peer in 0..10 {
        let balance = testbed.chain.balance_of(testbed.address(peer));
        let delta = balance as i128 - (100 * ETHER - ETHER) as i128;
        if delta > 0 {
            println!("peer {peer} earned the slashing reward: +{delta} wei");
        }
    }

    // And the spammer can no longer publish at all: no membership proof.
    match testbed.publish(spammer, b"let me back in") {
        Err(e) => println!("spammer publish attempt refused: {e}"),
        Ok(_) => unreachable!("slashed member cannot prove membership"),
    }
    println!("done.");
}
