//! The economics of spam: a double-signaling attacker is detected by
//! routing peers, their secret key is reconstructed from the two leaked
//! Shamir shares, and they are slashed on the membership contract — half
//! the stake burnt, half rewarded to the detecting peer (paper §II/§III).
//!
//! Ported to the scenario engine: the attack is one `SpamSpec` line in a
//! declarative `ScenarioSpec` instead of hand-driven testbed calls; the
//! engine's `ScenarioReport` carries the containment numbers, and the
//! returned testbed still lets us follow the money on chain.
//!
//! Run with: `cargo run --example spam_slashing`

use wakurln_ethsim::types::{Address, ETHER};
use wakurln_scenarios::{run_scenario_detailed, ScenarioSpec, SpamSpec};

fn main() {
    println!("== double-signaling → detection → slashing ==");

    // The world: 10 peers; one of them (the engine assigns the id after
    // the honest population) bursts two different messages in one epoch,
    // bypassing its local rate limiter — only the network-side nullifier
    // maps can catch this.
    let mut spec = ScenarioSpec::baseline(9, 7);
    spec.name = "spam_slashing".to_string();
    spec.tree_depth = 12;
    spec.spam = Some(SpamSpec {
        spammers: 1,
        burst: 2,
        at_ms: 15_000,
    });
    spec.drain_ms = 60_000;
    let spammer = spec.honest; // spammers follow the honest block

    println!(
        "running scenario '{}': {} peers, seed {}",
        spec.name,
        spec.initial_peers(),
        spec.seed
    );
    let (report, testbed) = run_scenario_detailed(&spec);

    // Routing peers saw both signals with the same internal nullifier,
    // combined the shares, reconstructed sk, and submitted slash
    // transactions.
    println!("spam messages attempted: {}", report.spam_attempted);
    println!(
        "spam detections across validators: {}",
        report.spam_detections
    );
    println!("members after slashing: {}", report.members_end);
    assert_eq!(report.spammers_slashed, 1, "spammer must be slashed");
    assert_eq!(report.members_end, 9, "spammer must be removed");
    assert!(!testbed.is_member(spammer), "spammer lost membership");

    // Spam was contained while honest traffic flowed.
    println!(
        "honest delivery rate: {:.3}, spam majority deliveries: {}",
        report.delivery_rate, report.spam_delivered_majority
    );
    assert!(report.spam_delivered_majority <= 1);

    // Follow the money.
    let burned = testbed.chain.balance_of(Address::BURN);
    println!(
        "burnt stake: {burned} wei ({}% of 1 ETH)",
        burned * 100 / ETHER
    );
    for peer in 0..testbed.peer_count() {
        let balance = testbed.chain.balance_of(testbed.address(peer));
        let delta = balance as i128 - (100 * ETHER - ETHER) as i128;
        if delta > 0 {
            println!("peer {peer} earned the slashing reward: +{delta} wei");
        }
    }
    println!("done.");
}
