//! Resource-restricted devices: why PoW fails where RLN works.
//!
//! The paper's §I motivates WAKU with "heterogeneous peers including
//! resource-restricted devices" and rejects PoW as "computationally
//! expensive hence not suitable". This example quantifies that: for each
//! device class, how many messages per epoch can it *send* under PoW at a
//! difficulty that would meaningfully slow a GPU spammer, versus under
//! RLN (where sending costs one proof generation and the rate limit is
//! cryptographic, not computational)?
//!
//! Run with: `cargo run --example heterogeneous_devices`

use wakurln_baselines::pow::DEVICES;

/// Modeled RLN proof-generation time per device, seconds. Scaled from the
/// paper's iPhone-8 figure (≈0.5 s at depth 32) by relative device speed,
/// using the phone profile as the anchor.
fn rln_proof_seconds(hash_rate_hz: f64) -> f64 {
    let phone = 200_000.0;
    0.5 * phone / hash_rate_hz
}

fn main() {
    println!("== sending budget per epoch (T = 10 s) by device class ==");
    println!(
        "{:>12} {:>14} {:>22} {:>22} {:>20}",
        "device", "hash rate", "PoW msgs/epoch (d=22)", "PoW msgs/epoch (d=26)", "RLN msgs/epoch"
    );
    for device in DEVICES {
        let pow22 = device.seals_per_epoch(22, 10);
        let pow26 = device.seals_per_epoch(26, 10);
        // RLN: the *protocol* caps at 1/epoch; the device just needs one
        // proof generation to fit in the epoch.
        let proof_secs = rln_proof_seconds(device.hash_rate_hz);
        let rln = if proof_secs <= 10.0 { 1.0 } else { 0.0 };
        println!(
            "{:>12} {:>12.0}/s {:>22.3} {:>22.4} {:>20}",
            device.name,
            device.hash_rate_hz,
            pow22,
            pow26,
            if rln >= 1.0 { "1 (protocol cap)" } else { "0" },
        );
    }

    println!();
    println!("reading the table:");
    println!("- under PoW, any difficulty low enough for the iot-sensor/phone to");
    println!("  publish lets the gpu-rig send thousands of messages per epoch;");
    println!("  any difficulty that stops the rig also silences every phone.");
    println!("- under RLN, every member — sensor or rig — gets exactly one");
    println!("  message per epoch, enforced by the nullifier, not by burning CPU.");
}
