//! Quickstart: the Figure-1 pipeline on a small network.
//!
//! Builds a 10-peer WAKU-RLN-RELAY network backed by a simulated
//! membership contract, registers everyone (staking), lets the gossip
//! meshes form, publishes an anonymous rate-limited message and shows it
//! reaching the network.
//!
//! Run with: `cargo run --example quickstart`

use waku_rln_relay::{Testbed, TestbedConfig};

fn main() {
    println!("== WAKU-RLN-RELAY quickstart ==");

    // 1. Build the world: trusted setup, chain + membership contract,
    //    10 peers, funding, registration transactions, event sync.
    let mut testbed = Testbed::build(TestbedConfig {
        n_peers: 10,
        tree_depth: 12,
        degree: 4,
        seed: 2024,
        ..Default::default()
    });
    println!(
        "registered members on contract: {}",
        testbed.active_members()
    );
    println!(
        "membership root (local view of peer 0): {}",
        testbed
            .net
            .node(wakurln_netsim::NodeId(0))
            .membership_root()
    );

    // 2. Let GossipSub meshes form.
    testbed.run(8_000, 1_000);

    // 3. Publish anonymously through the RLN pipeline: proof generation,
    //    epoch-bound nullifier, Shamir share — all attached automatically.
    let payload = b"hello, spam-protected anonymous world";
    let id = testbed.publish(3, payload).expect("peer 3 is a member");
    println!("peer 3 published message {id:?}");

    // 4. The one-per-epoch local rate limit is enforced at the source...
    match testbed.publish(3, b"second message, same epoch") {
        Err(e) => println!("second publish in the same epoch refused: {e}"),
        Ok(_) => unreachable!("rate limiter must refuse"),
    }

    // 5. ...and the message propagates to everyone else.
    testbed.run(15_000, 1_000);
    let received = testbed.delivery_count(payload, 3);
    println!("peers that received the message: {received}/9");
    assert!(received >= 7, "propagation failed");

    // 6. Relayer-side statistics from a routing peer.
    let stats = testbed
        .net
        .node(wakurln_netsim::NodeId(0))
        .validator()
        .stats();
    println!(
        "peer 0 validation stats: valid={} invalid_proof={} out_of_window={} spam={}",
        stats.valid, stats.invalid_proof, stats.epoch_out_of_window, stats.spam_detected
    );
    println!("done.");
}
